//! The link-state storage abstraction and the sparse row store.
//!
//! The paper's headline result is that quorum-grid rendezvous cuts
//! per-node state and traffic from `O(n²)` to `O(n√n)`: a quorum node
//! receives link-state rows only from its `~2√n` rendezvous clients, so
//! there is no reason for it to *allocate* an `n × n` matrix. This
//! module makes storage honour that bound:
//!
//! * [`LinkStateStore`] — the trait both stores implement. The required
//!   methods are pure storage (put/get/drop rows); the **round-two
//!   kernel** ([`best_one_hop`](LinkStateStore::best_one_hop),
//!   [`one_hop_options`](LinkStateStore::one_hop_options),
//!   [`anyone_reaches`](LinkStateStore::anyone_reaches)) is written once
//!   as provided methods, so the dense baseline and the sparse store
//!   run the identical routing computation.
//! * [`RowStore`] — a sparse indexed map `origin → (receipt time, row)`
//!   holding exactly the rows a node's role entitles it to: its own
//!   row plus its rendezvous clients' rows. Each held row is a
//!   [`LaneRow`]: three parallel contiguous lanes (`dst`, `latency_ms`,
//!   liveness/loss) holding only the *live* entries, ascending by
//!   destination, in the wire's own fixed-point quantization — ~5 bytes
//!   per entry where an array of `LinkEntry` structs needs 12. A node
//!   probing `O(√n)` targets therefore stores `O(√n)` entries per row
//!   and `O(n)` overall, far below even the paper's `O(n√n)` wire
//!   bound. An optional row *entitlement* is debug-asserted on insert,
//!   so a protocol bug that re-grows `O(n)` rows fails loudly in tests
//!   instead of silently reintroducing the quadratic table.
//! * [`RowRef`] — a borrowed view of one row: dense, sparse pairs, or
//!   lanes. The round-two kernel is written once over it (see
//!   [`best_one_hop_rows`]) and is **integer-only**: the latency lanes
//!   are already integer milliseconds (the wire carries nothing finer),
//!   so a path cost is a `u32` add of two `u16` legs with `u32::MAX` as
//!   the infinite sentinel — bit-identical to the historical `f64`
//!   computation, because every `u16` sum is exactly representable in
//!   both domains. The kernel walks the *live* entries of both rows in
//!   an ascending merge-join, which reproduces the dense `h = 0..n`
//!   scan's lowest-index tie-break exactly (dead entries have infinite
//!   cost and can never win, so skipping them is observationally
//!   neutral); when both rows list the same destinations — the steady
//!   state for a warm quorum server — it collapses to an elementwise
//!   lane reduction the compiler vectorizes.
//!
//! The dense [`LinkStateTable`](crate::table::LinkStateTable) stays for
//! the full-mesh baseline (which genuinely holds all `n` rows, each
//! dense lookups `O(1)`) and as the reference implementation in tests.

use crate::entry::{Cost, LinkEntry, INFINITE_COST, INFINITE_COST_U32};
use apor_telemetry::{Counter, EventKind, Gauge, Severity, Telemetry};
use std::collections::BTreeMap;

/// A borrowed view of one link-state row: dense, sparse pairs, or lanes.
///
/// Sparse rows hold `(dst, entry)` pairs strictly ascending by `dst`;
/// destinations not listed read as [`LinkEntry::dead`]. Lane rows are
/// the struct-of-arrays equivalent (see [`LaneRow`]): three parallel
/// slices in wire quantization, holding **live entries only**. All
/// variants expose `O(1)`/`O(log k)` random access and an ascending
/// iterator over *live* entries, which is all the round-two kernel
/// needs; repeated ascending probes should go through [`RowRef::cursor`]
/// instead of [`RowRef::get`].
#[derive(Debug, Clone, Copy)]
pub enum RowRef<'a> {
    /// A full-width row — every destination has an explicit entry.
    Dense(&'a [LinkEntry]),
    /// Live-entries-only row over a row of `width` destinations.
    Sparse {
        /// Full row width (`n`); destinations ≥ `width` are out of range.
        width: usize,
        /// `(dst, entry)` pairs, strictly ascending by `dst`.
        entries: &'a [(u16, LinkEntry)],
    },
    /// Struct-of-arrays live entries over a row of `width` destinations.
    ///
    /// The three lanes are index-aligned and hold live entries only,
    /// strictly ascending by destination, in the exact wire
    /// quantization ([`LinkEntry::encode`]): `liveness_loss[i]` is the
    /// wire liveness byte (bit 7 always set here), `latency_ms[i]` the
    /// wire latency.
    Lanes {
        /// Full row width (`n`); destinations ≥ `width` are out of range.
        width: usize,
        /// Destination lane, strictly ascending.
        dst: &'a [u16],
        /// Latency lane (integer milliseconds, wire-clamped).
        latency_ms: &'a [u16],
        /// Liveness/loss lane (the exact wire byte).
        liveness_loss: &'a [u8],
    },
}

impl<'a> RowRef<'a> {
    /// Full width of the row (`n`).
    #[must_use]
    pub fn width(&self) -> usize {
        match self {
            RowRef::Dense(r) => r.len(),
            RowRef::Sparse { width, .. } | RowRef::Lanes { width, .. } => *width,
        }
    }

    /// The entry for `dst` (dead when not stored).
    ///
    /// # Panics
    /// Panics if `dst ≥ width()`.
    #[must_use]
    pub fn get(&self, dst: usize) -> LinkEntry {
        match self {
            RowRef::Dense(r) => r[dst],
            RowRef::Sparse { width, entries } => {
                assert!(dst < *width, "dst {dst} out of range");
                match entries.binary_search_by_key(&(dst as u16), |e| e.0) {
                    Ok(i) => entries[i].1,
                    Err(_) => LinkEntry::dead(),
                }
            }
            RowRef::Lanes {
                width,
                dst: dsts,
                latency_ms,
                liveness_loss,
            } => {
                assert!(dst < *width, "dst {dst} out of range");
                match dsts.binary_search(&(dst as u16)) {
                    Ok(i) => LinkEntry::from_wire_parts(latency_ms[i], liveness_loss[i]),
                    Err(_) => LinkEntry::dead(),
                }
            }
        }
    }

    /// Routing cost of the `dst` entry as the integer kernel sees it:
    /// the latency lane when alive, [`INFINITE_COST_U32`] otherwise.
    ///
    /// # Panics
    /// Panics if `dst ≥ width()`.
    #[must_use]
    pub fn cost_u32(&self, dst: usize) -> u32 {
        match self {
            RowRef::Dense(r) => r[dst].cost_u32(),
            RowRef::Sparse { width, entries } => {
                assert!(dst < *width, "dst {dst} out of range");
                match entries.binary_search_by_key(&(dst as u16), |e| e.0) {
                    Ok(i) => entries[i].1.cost_u32(),
                    Err(_) => INFINITE_COST_U32,
                }
            }
            RowRef::Lanes {
                width,
                dst: dsts,
                latency_ms,
                ..
            } => {
                assert!(dst < *width, "dst {dst} out of range");
                match dsts.binary_search(&(dst as u16)) {
                    Ok(i) => u32::from(latency_ms[i]),
                    Err(_) => INFINITE_COST_U32,
                }
            }
        }
    }

    /// A resumable lookup cursor over this row. Probing destinations in
    /// ascending order costs amortized `O(1)` per probe (the cursor
    /// only ever walks forward); a backwards probe falls back to one
    /// binary search to re-position. [`RowRef::get`] by contrast pays a
    /// fresh `O(log k)` search on every call.
    #[must_use]
    pub fn cursor(&self) -> RowCursor<'a> {
        RowCursor { row: *self, pos: 0 }
    }

    /// Iterate the live entries as `(dst, entry)`, ascending by `dst`.
    #[must_use]
    pub fn iter_live(&self) -> LiveEntries<'a> {
        match self {
            RowRef::Dense(r) => LiveEntries::Dense { row: r, next: 0 },
            RowRef::Sparse { entries, .. } => LiveEntries::Sparse {
                iter: entries.iter(),
            },
            RowRef::Lanes {
                dst,
                latency_ms,
                liveness_loss,
                ..
            } => LiveEntries::Lanes {
                dst,
                latency_ms,
                liveness_loss,
                next: 0,
            },
        }
    }

    /// Iterate the live entries as `(dst, integer cost)`, ascending by
    /// `dst` — the kernel-facing view: no `LinkEntry` (and no `f32`
    /// loss reconstruction) is materialised.
    fn iter_costs(&self) -> LiveCosts<'a> {
        match self {
            RowRef::Dense(r) => LiveCosts::Dense { row: r, next: 0 },
            RowRef::Sparse { entries, .. } => LiveCosts::Sparse {
                iter: entries.iter(),
            },
            RowRef::Lanes {
                dst, latency_ms, ..
            } => LiveCosts::Lanes {
                dst,
                latency_ms,
                next: 0,
            },
        }
    }

    /// Materialise a full-width row (absent entries dead).
    #[must_use]
    pub fn to_dense(&self) -> Vec<LinkEntry> {
        match self {
            RowRef::Dense(r) => r.to_vec(),
            RowRef::Sparse { width, entries } => {
                let mut out = vec![LinkEntry::dead(); *width];
                for &(dst, e) in *entries {
                    out[dst as usize] = e;
                }
                out
            }
            RowRef::Lanes { width, .. } => {
                let mut out = vec![LinkEntry::dead(); *width];
                for (dst, e) in self.iter_live() {
                    out[dst] = e;
                }
                out
            }
        }
    }
}

/// Ascending iterator over the live entries of a [`RowRef`].
#[derive(Debug)]
pub enum LiveEntries<'a> {
    /// Scanning a dense row, skipping dead entries.
    Dense {
        /// The row being scanned.
        row: &'a [LinkEntry],
        /// Next index to examine.
        next: usize,
    },
    /// Walking a sparse row's stored pairs.
    Sparse {
        /// Remaining pairs.
        iter: std::slice::Iter<'a, (u16, LinkEntry)>,
    },
    /// Walking a lane row's parallel slices (live by construction).
    Lanes {
        /// Destination lane.
        dst: &'a [u16],
        /// Latency lane.
        latency_ms: &'a [u16],
        /// Liveness/loss lane (wire byte).
        liveness_loss: &'a [u8],
        /// Next lane index to yield.
        next: usize,
    },
}

impl Iterator for LiveEntries<'_> {
    type Item = (usize, LinkEntry);

    fn next(&mut self) -> Option<(usize, LinkEntry)> {
        match self {
            LiveEntries::Dense { row, next } => {
                while *next < row.len() {
                    let i = *next;
                    *next += 1;
                    if row[i].alive {
                        return Some((i, row[i]));
                    }
                }
                None
            }
            LiveEntries::Sparse { iter } => iter
                .by_ref()
                .find(|(_, e)| e.alive)
                .map(|&(d, e)| (d as usize, e)),
            LiveEntries::Lanes {
                dst,
                latency_ms,
                liveness_loss,
                next,
            } => {
                let i = *next;
                if i < dst.len() {
                    *next += 1;
                    Some((
                        dst[i] as usize,
                        LinkEntry::from_wire_parts(latency_ms[i], liveness_loss[i]),
                    ))
                } else {
                    None
                }
            }
        }
    }
}

/// Ascending iterator over `(dst, integer cost)` of a row's live
/// entries — what the integer kernel consumes. Unlike [`LiveEntries`]
/// it never reconstructs a `LinkEntry` (no `f32` loss division on the
/// hot path).
enum LiveCosts<'a> {
    Dense {
        row: &'a [LinkEntry],
        next: usize,
    },
    Sparse {
        iter: std::slice::Iter<'a, (u16, LinkEntry)>,
    },
    Lanes {
        dst: &'a [u16],
        latency_ms: &'a [u16],
        next: usize,
    },
}

impl Iterator for LiveCosts<'_> {
    type Item = (usize, u32);

    fn next(&mut self) -> Option<(usize, u32)> {
        match self {
            LiveCosts::Dense { row, next } => {
                while *next < row.len() {
                    let i = *next;
                    *next += 1;
                    if row[i].alive {
                        return Some((i, u32::from(row[i].latency_ms)));
                    }
                }
                None
            }
            LiveCosts::Sparse { iter } => iter
                .by_ref()
                .find(|(_, e)| e.alive)
                .map(|&(d, e)| (d as usize, u32::from(e.latency_ms))),
            LiveCosts::Lanes {
                dst,
                latency_ms,
                next,
            } => {
                let i = *next;
                if i < dst.len() {
                    *next += 1;
                    Some((dst[i] as usize, u32::from(latency_ms[i])))
                } else {
                    None
                }
            }
        }
    }
}

/// A resumable lookup cursor over one [`RowRef`].
///
/// Created by [`RowRef::cursor`]. Probes that ascend by destination —
/// the shape of every per-candidate scavenging loop, since
/// [`LinkStateStore::present_rows`] is ascending — advance the cursor
/// linearly, so a full ascending sweep over a row of `k` entries costs
/// `O(k + probes)` total instead of `O(probes · log k)` fresh binary
/// searches. A backwards probe re-positions with a single binary
/// search; correctness never depends on probe order.
#[derive(Debug, Clone)]
pub struct RowCursor<'a> {
    row: RowRef<'a>,
    pos: usize,
}

impl RowCursor<'_> {
    /// Position the cursor on `target` within a keyed lane/pair row of
    /// `len` entries whose `i`-th key is `key(i)`; returns the entry
    /// index on a hit.
    fn seek(&mut self, len: usize, key: impl Fn(usize) -> u16, target: u16) -> Option<usize> {
        if self.pos < len && key(self.pos) <= target {
            // Ascending (or repeated) probe: walk forward.
            while self.pos < len && key(self.pos) < target {
                self.pos += 1;
            }
            return (self.pos < len && key(self.pos) == target).then_some(self.pos);
        }
        // Backwards probe or exhausted cursor: one binary search.
        let mut lo = 0usize;
        let mut hi = len;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if key(mid) < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        self.pos = lo;
        (lo < len && key(lo) == target).then_some(lo)
    }

    /// The entry for `dst` (dead when not stored), like [`RowRef::get`]
    /// but amortized `O(1)` across ascending probes.
    ///
    /// # Panics
    /// Panics if `dst ≥ width()`.
    pub fn get(&mut self, dst: usize) -> LinkEntry {
        match self.row {
            RowRef::Dense(r) => r[dst],
            RowRef::Sparse { width, entries } => {
                assert!(dst < width, "dst {dst} out of range");
                self.seek(entries.len(), |i| entries[i].0, dst as u16)
                    .map_or_else(LinkEntry::dead, |i| entries[i].1)
            }
            RowRef::Lanes {
                width,
                dst: dsts,
                latency_ms,
                liveness_loss,
            } => {
                assert!(dst < width, "dst {dst} out of range");
                self.seek(dsts.len(), |i| dsts[i], dst as u16)
                    .map_or_else(LinkEntry::dead, |i| {
                        LinkEntry::from_wire_parts(latency_ms[i], liveness_loss[i])
                    })
            }
        }
    }

    /// Integer routing cost of the `dst` entry ([`INFINITE_COST_U32`]
    /// when dead or not stored), like [`RowRef::cost_u32`] but
    /// amortized `O(1)` across ascending probes.
    ///
    /// # Panics
    /// Panics if `dst ≥ width()`.
    pub fn cost_u32(&mut self, dst: usize) -> u32 {
        match self.row {
            RowRef::Dense(r) => r[dst].cost_u32(),
            RowRef::Sparse { width, entries } => {
                assert!(dst < width, "dst {dst} out of range");
                self.seek(entries.len(), |i| entries[i].0, dst as u16)
                    .map_or(INFINITE_COST_U32, |i| entries[i].1.cost_u32())
            }
            RowRef::Lanes {
                width,
                dst: dsts,
                latency_ms,
                ..
            } => {
                assert!(dst < width, "dst {dst} out of range");
                self.seek(dsts.len(), |i| dsts[i], dst as u16)
                    .map_or(INFINITE_COST_U32, |i| u32::from(latency_ms[i]))
            }
        }
    }
}

/// Index ranges of `0..len` with up to two positions excluded — how the
/// kernel's lane fast path skips the endpoints `a` and `b` without
/// branching inside the reduction loops.
fn excluded_ranges(
    len: usize,
    skip_a: Option<usize>,
    skip_b: Option<usize>,
) -> [std::ops::Range<usize>; 3] {
    match (skip_a, skip_b) {
        (None, None) => [0..len, 0..0, 0..0],
        (Some(p), None) | (None, Some(p)) => [0..p, p + 1..len, 0..0],
        (Some(x), Some(y)) => {
            let (p, q) = if x <= y { (x, y) } else { (y, x) };
            if p == q {
                [0..p, p + 1..len, 0..0]
            } else {
                [0..p, p + 1..q, q + 1..len]
            }
        }
    }
}

/// Minimum elementwise sum of two equal-length latency lanes
/// (`u32::MAX` when empty). A pure integer reduction the compiler
/// vectorizes — this is the kernel's innermost loop.
#[inline]
fn min_lane_sum(la: &[u16], lb: &[u16]) -> u32 {
    la.iter()
        .zip(lb)
        .fold(u32::MAX, |m, (&x, &y)| m.min(u32::from(x) + u32::from(y)))
}

/// First index whose elementwise sum equals `target`.
#[inline]
fn find_lane_sum(la: &[u16], lb: &[u16], target: u32) -> Option<usize> {
    la.iter()
        .zip(lb)
        .position(|(&x, &y)| u32::from(x) + u32::from(y) == target)
}

/// Best relay over two lane rows with **identical destination lanes**:
/// the live intersection is the shared support itself, so the ascending
/// merge-join collapses to an elementwise reduction over the two
/// latency lanes (both lanes hold live entries only — a lane row never
/// materialises dead entries). Two vectorizable passes: a min-reduction
/// over the sums with the `a`/`b` positions carved out, then a
/// first-index search for the winner, which reproduces the merge-join's
/// lowest-index tie-break exactly.
fn lanes_shared_best(
    dsts: &[u16],
    la: &[u16],
    lb: &[u16],
    a: usize,
    b: usize,
) -> Option<(usize, u32)> {
    let skip_a = dsts.binary_search(&(a as u16)).ok();
    let skip_b = dsts.binary_search(&(b as u16)).ok();
    let ranges = excluded_ranges(dsts.len(), skip_a, skip_b);
    let mut best = u32::MAX;
    for r in &ranges {
        best = best.min(min_lane_sum(&la[r.clone()], &lb[r.clone()]));
    }
    if best == u32::MAX {
        return None;
    }
    for r in &ranges {
        if let Some(p) = find_lane_sum(&la[r.clone()], &lb[r.clone()], best) {
            return Some((dsts[r.start + p] as usize, best));
        }
    }
    None
}

/// **The round-two kernel**, integer-only, written once over borrowed
/// rows: the best one-hop path `a → h → b` computable from row `a` and
/// row `b` (`h == b` means the direct link), as a `(hop, cost)` pair in
/// integer milliseconds, or `None` when no finite path exists.
///
/// Costs are exact: the wire carries integer-millisecond latencies, so
/// a path cost is a `u32` add of two `u16` legs with
/// [`INFINITE_COST_U32`] as the infinite sentinel — every value is also
/// exactly representable in `f64`, which is why this is bit-identical
/// to the historical floating-point kernel. The direct cost is the
/// minimum of the two directions' estimates; ties prefer the direct
/// link, then the lowest hop index (the ascending merge-join yields
/// candidates in index order and only a strict improvement replaces the
/// incumbent).
///
/// Two lane rows listing the same destinations — the steady state for
/// a warm quorum server whose clients probe the same target set — take
/// an elementwise fast path over the latency lanes instead of the
/// merge-join; the result is identical.
///
/// Freshness is the caller's concern: [`LinkStateStore::best_one_hop`]
/// applies the staleness rule and delegates here.
#[must_use]
pub fn best_one_hop_rows(
    row_a: &RowRef,
    row_b: &RowRef,
    a: usize,
    b: usize,
) -> Option<(usize, u32)> {
    let direct = row_a.cost_u32(b).min(row_b.cost_u32(a));
    let mut best_hop = b;
    let mut best_cost = direct;
    let relay = match (row_a, row_b) {
        (
            RowRef::Lanes {
                dst: da,
                latency_ms: la,
                ..
            },
            RowRef::Lanes {
                dst: db,
                latency_ms: lb,
                ..
            },
        ) if da == db => lanes_shared_best(da, la, lb, a, b),
        _ => {
            let mut it_a = row_a.iter_costs();
            let mut it_b = row_b.iter_costs();
            let (mut cur_a, mut cur_b) = (it_a.next(), it_b.next());
            let mut best: Option<(usize, u32)> = None;
            while let (Some((ha, ca)), Some((hb, cb))) = (cur_a, cur_b) {
                match ha.cmp(&hb) {
                    std::cmp::Ordering::Less => cur_a = it_a.next(),
                    std::cmp::Ordering::Greater => cur_b = it_b.next(),
                    std::cmp::Ordering::Equal => {
                        if ha != a && ha != b {
                            // Both legs live: the sum of two u16s cannot
                            // reach the u32 sentinel.
                            let c = ca + cb;
                            if best.is_none_or(|(_, bc)| c < bc) {
                                best = Some((ha, c));
                            }
                        }
                        cur_a = it_a.next();
                        cur_b = it_b.next();
                    }
                }
            }
            best
        }
    };
    if let Some((h, c)) = relay {
        if c < best_cost {
            best_cost = c;
            best_hop = h;
        }
    }
    (best_cost != INFINITE_COST_U32).then_some((best_hop, best_cost))
}

/// One owned link-state row in struct-of-arrays form: three parallel
/// lanes holding the **live** entries only, strictly ascending by
/// destination, in the exact wire quantization — `latency_ms` is the
/// wire's integer-millisecond latency (clamped below the dead
/// sentinel, as [`LinkEntry::encode`] would emit it) and
/// `liveness_loss` the wire's liveness byte. A row that arrived from
/// the wire therefore round-trips bit-identically: re-encoding the
/// lanes reproduces the frame bytes.
///
/// ~5 bytes per entry ([`LaneRow::ENTRY_BYTES`]) versus 12 for the
/// array-of-structs `(u16, LinkEntry)` layout this replaces, and the
/// latency lane is directly consumable by the integer kernel with no
/// decode step.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LaneRow {
    dst: Box<[u16]>,
    latency_ms: Box<[u16]>,
    liveness_loss: Box<[u8]>,
    /// The origin's row sequence number (0 = unversioned legacy row).
    /// Bumped by the origin on retraction events; the store refuses to
    /// replace a versioned row with a strictly older one, so delayed or
    /// replayed frames can never resurrect a withdrawn link.
    seqno: u16,
    /// Destinations the origin explicitly withdrew at this seqno,
    /// strictly ascending — a fourth lane alongside the live-entry
    /// lanes. Retraction is stronger than mere absence: receivers
    /// propagate it into their feasibility tables.
    retracted: Box<[u16]>,
}

/// Is `b` strictly newer than `a` under the RFC 8966 circular 16-bit
/// comparison? Sequence numbers wrap, so "newer" means the forward
/// distance `b − a (mod 2¹⁶)` lands in the first half of the circle.
#[must_use]
pub fn seqno_newer(a: u16, b: u16) -> bool {
    b != a && b.wrapping_sub(a) < 0x8000
}

impl LaneRow {
    /// Stored bytes per live entry: 2 (dst) + 2 (latency) + 1
    /// (liveness/loss).
    pub const ENTRY_BYTES: usize = 5;

    /// Reduce a dense row to its live entries.
    #[must_use]
    pub fn from_dense(entries: &[LinkEntry]) -> Self {
        Self::collect(
            entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.alive)
                .map(|(d, &e)| (d as u16, e)),
        )
    }

    /// Reduce `(dst, entry)` pairs (strictly ascending by `dst`) to
    /// their live entries.
    #[must_use]
    pub fn from_pairs(pairs: &[(u16, LinkEntry)]) -> Self {
        debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));
        Self::collect(pairs.iter().filter(|(_, e)| e.alive).copied())
    }

    fn collect(live: impl Iterator<Item = (u16, LinkEntry)>) -> Self {
        let (mut dst, mut latency_ms, mut liveness_loss) = (Vec::new(), Vec::new(), Vec::new());
        for (d, e) in live {
            let wire = e.encode();
            dst.push(d);
            latency_ms.push(u16::from_be_bytes([wire[0], wire[1]]));
            liveness_loss.push(wire[2]);
        }
        LaneRow {
            dst: dst.into_boxed_slice(),
            latency_ms: latency_ms.into_boxed_slice(),
            liveness_loss: liveness_loss.into_boxed_slice(),
            seqno: 0,
            retracted: Box::default(),
        }
    }

    /// Stamp the row with the origin's seqno and retraction lane
    /// (strictly ascending destinations, debug-asserted).
    #[must_use]
    pub fn with_version(mut self, seqno: u16, retracted: &[u16]) -> Self {
        debug_assert!(retracted.windows(2).all(|w| w[0] < w[1]));
        self.seqno = seqno;
        self.retracted = retracted.into();
        self
    }

    /// The origin's row sequence number (0 = unversioned).
    #[must_use]
    pub fn seqno(&self) -> u16 {
        self.seqno
    }

    /// The retraction lane: destinations the origin explicitly
    /// withdrew, strictly ascending.
    #[must_use]
    pub fn retracted(&self) -> &[u16] {
        &self.retracted
    }

    /// Number of (live) entries stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.dst.len()
    }

    /// True when no live entry is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dst.is_empty()
    }

    /// Borrow as a [`RowRef::Lanes`] over a row of `width` destinations.
    #[must_use]
    pub fn as_row_ref(&self, width: usize) -> RowRef<'_> {
        RowRef::Lanes {
            width,
            dst: &self.dst,
            latency_ms: &self.latency_ms,
            liveness_loss: &self.liveness_loss,
        }
    }

    /// Insert, replace or remove the entry for `dst`: a live entry
    /// lands in lane order (wire-quantized), a dead one removes any
    /// stored entry.
    fn set(&mut self, dst: u16, entry: LinkEntry) {
        match (self.dst.binary_search(&dst), entry.alive) {
            (Ok(i), true) => {
                let wire = entry.encode();
                self.latency_ms[i] = u16::from_be_bytes([wire[0], wire[1]]);
                self.liveness_loss[i] = wire[2];
            }
            (Ok(i), false) => {
                self.remove_at(i);
            }
            (Err(i), true) => {
                let wire = entry.encode();
                let mut dsts = std::mem::take(&mut self.dst).into_vec();
                let mut lats = std::mem::take(&mut self.latency_ms).into_vec();
                let mut livs = std::mem::take(&mut self.liveness_loss).into_vec();
                dsts.insert(i, dst);
                lats.insert(i, u16::from_be_bytes([wire[0], wire[1]]));
                livs.insert(i, wire[2]);
                self.dst = dsts.into_boxed_slice();
                self.latency_ms = lats.into_boxed_slice();
                self.liveness_loss = livs.into_boxed_slice();
            }
            (Err(_), false) => {}
        }
    }

    fn remove_at(&mut self, i: usize) {
        let mut dsts = std::mem::take(&mut self.dst).into_vec();
        let mut lats = std::mem::take(&mut self.latency_ms).into_vec();
        let mut livs = std::mem::take(&mut self.liveness_loss).into_vec();
        dsts.remove(i);
        lats.remove(i);
        livs.remove(i);
        self.dst = dsts.into_boxed_slice();
        self.latency_ms = lats.into_boxed_slice();
        self.liveness_loss = livs.into_boxed_slice();
    }
}

/// Storage of link-state rows plus the round-two route computation.
///
/// A row logically covers all `n` destinations; what varies between
/// implementations is *which* origins have a row at all and whether a
/// held row is materialised densely or as its live entries only (see
/// [`RowRef`]). "Present" means a row was received (it has a receipt
/// time); a present row may still be stale for routing — the kernel
/// methods apply the paper's 3-routing-interval freshness rule
/// (section 6.2.2) on top.
pub trait LinkStateStore {
    /// Number of nodes covered (row width).
    fn len(&self) -> usize;

    /// True when the store covers no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replace row `origin` with `entries`, stamped at `now` seconds.
    ///
    /// # Panics
    /// Panics if `entries.len() != len()` or `origin ≥ len()`.
    fn update_row(&mut self, origin: usize, entries: &[LinkEntry], now: f64);

    /// Replace row `origin` with sparse `(dst, entry)` pairs (strictly
    /// ascending by `dst` — the wire decoder guarantees this for
    /// [`SparseLinkStateMsg`](crate::wire::SparseLinkStateMsg) rows);
    /// destinations not listed become dead. Stamped at `now`.
    ///
    /// # Panics
    /// Panics if `origin ≥ len()` or any `dst ≥ len()`; ordering is
    /// debug-asserted.
    fn update_row_sparse(&mut self, origin: usize, entries: &[(u16, LinkEntry)], now: f64);

    /// Replace row `origin` like
    /// [`update_row`](LinkStateStore::update_row), carrying the route
    /// discipline: the origin's `seqno` and explicit `retractions`.
    /// Returns `false` (row unchanged) when the held row is versioned
    /// and strictly newer than the incoming one — the stale-replay
    /// guard. A zero `seqno` on either side is unversioned and always
    /// accepted. The default ignores versioning (dense baseline stores
    /// keep their legacy behavior).
    fn update_row_versioned(
        &mut self,
        origin: usize,
        entries: &[LinkEntry],
        seqno: u16,
        retractions: &[u16],
        now: f64,
    ) -> bool {
        let _ = (seqno, retractions);
        self.update_row(origin, entries, now);
        true
    }

    /// [`update_row_sparse`](LinkStateStore::update_row_sparse) with the
    /// route discipline; same acceptance rule as
    /// [`update_row_versioned`](LinkStateStore::update_row_versioned).
    fn update_row_sparse_versioned(
        &mut self,
        origin: usize,
        entries: &[(u16, LinkEntry)],
        seqno: u16,
        retractions: &[u16],
        now: f64,
    ) -> bool {
        let _ = (seqno, retractions);
        self.update_row_sparse(origin, entries, now);
        true
    }

    /// The held seqno of row `origin` (0 = absent or unversioned).
    fn row_seqno(&self, _origin: usize) -> u16 {
        0
    }

    /// Did row `origin` explicitly retract `dst` at its current seqno?
    fn row_retracts(&self, _origin: usize, _dst: usize) -> bool {
        false
    }

    /// The full retraction lane of row `origin`, ascending (empty when
    /// the row is absent or the store does not track versions).
    fn row_retractions(&self, _origin: usize) -> Vec<u16> {
        Vec::new()
    }

    /// Update a single entry of a row (used for the node's own row,
    /// which its probers refresh incrementally). Creates the row (all
    /// other entries dead) when absent.
    fn update_entry(&mut self, origin: usize, dst: usize, entry: LinkEntry, now: f64);

    /// Forget a row (e.g. on membership change or client loss).
    fn clear_row(&mut self, origin: usize);

    /// A borrowed view of row `origin`, when present.
    fn row_ref(&self, origin: usize) -> Option<RowRef<'_>>;

    /// Receipt time of row `origin`; `None` = never received.
    fn row_time(&self, origin: usize) -> Option<f64>;

    /// The origins that currently have a row, ascending.
    fn present_rows(&self) -> Vec<usize>;

    /// Number of rows currently held — the state-accounting counter the
    /// scale experiments assert against (`O(√n)` for a quorum node).
    fn row_count(&self) -> usize;

    /// Number of link entries currently allocated — the per-node memory
    /// figure the scale experiments report. Dense stores count the full
    /// matrix; sparse stores count only what they hold.
    fn entry_count(&self) -> usize {
        self.row_count() * self.len()
    }

    // ------------------------------------------------------------------
    // Provided accessors
    // ------------------------------------------------------------------

    /// Age of row `origin` at time `now`, if ever received.
    fn row_age(&self, origin: usize, now: f64) -> Option<f64> {
        self.row_time(origin).map(|t| now - t)
    }

    /// Is row `origin` present and no older than `max_age` at `now`?
    fn row_fresh(&self, origin: usize, now: f64, max_age: f64) -> bool {
        self.row_age(origin, now).is_some_and(|a| a <= max_age)
    }

    /// Row `origin` materialised full-width, when present (absent
    /// entries dead). Export paths use this; the kernel never does.
    fn row_dense(&self, origin: usize) -> Option<Vec<LinkEntry>> {
        self.row_ref(origin).map(|r| r.to_dense())
    }

    /// The entry `origin → dst` (dead when the row is absent).
    fn entry(&self, origin: usize, dst: usize) -> LinkEntry {
        self.row_ref(origin)
            .map_or_else(LinkEntry::dead, |r| r.get(dst))
    }

    /// Routing cost of `origin → dst` (infinite when dead/unknown).
    fn cost(&self, origin: usize, dst: usize) -> Cost {
        if origin == dst {
            return 0.0;
        }
        self.entry(origin, dst).cost()
    }

    // ------------------------------------------------------------------
    // The round-two kernel — written once, over the trait
    // ------------------------------------------------------------------

    /// **The round-two kernel.** Best one-hop path `a → h → b` (or the
    /// direct link, represented as `h == b`) computable from rows `a`
    /// and `b`, both of which must be fresh (≤ `max_age` at `now`).
    ///
    /// Link costs are assumed symmetric (paper section 3), so the path
    /// cost is `row_a[h] + row_b[h]`; the direct cost is the *minimum*
    /// of the two directions' estimates (they may disagree
    /// transiently). Ties prefer the direct link, then the lowest hop
    /// index, making the recommendation deterministic across rendezvous
    /// servers with identical data.
    ///
    /// Implemented by delegating to the integer kernel
    /// [`best_one_hop_rows`]: an ascending merge-join over the *live*
    /// entries of both rows (a finite path cost needs both legs alive,
    /// so only the intersection of the live sets can win, and ascending
    /// order reproduces the dense `h = 0..n` scan's lowest-index
    /// tie-break exactly), collapsing to a vectorized elementwise lane
    /// reduction when both rows share one destination lane. Cost is
    /// `O(k_a + k_b)` live entries instead of `O(n)`, with no `f64`
    /// and no `LinkEntry` materialisation — the integer result converts
    /// exactly.
    ///
    /// Returns `None` when either row is missing/stale or no finite
    /// path exists.
    fn best_one_hop(&self, a: usize, b: usize, now: f64, max_age: f64) -> Option<(usize, Cost)> {
        if a == b || !self.row_fresh(a, now, max_age) || !self.row_fresh(b, now, max_age) {
            return None;
        }
        let row_a = self.row_ref(a).expect("fresh row present");
        let row_b = self.row_ref(b).expect("fresh row present");
        best_one_hop_rows(&row_a, &row_b, a, b).map(|(h, c)| (h, f64::from(c)))
    }

    /// [`best_one_hop`](LinkStateStore::best_one_hop) for every
    /// destination of one diamond in a single pass: all recommendations
    /// a rendezvous server owes client `a` share the first-leg row `a`,
    /// so the batch resolves that row (and its freshness) once and runs
    /// the kernel per destination, instead of repeating the row lookup
    /// `|dests|` times. The result is index-aligned with `dests`;
    /// `dests[i] == a`, a stale/missing destination row, or no finite
    /// path all yield `None` — exactly what the per-pair calls would
    /// return.
    fn best_hops_batch(
        &self,
        a: usize,
        dests: &[usize],
        now: f64,
        max_age: f64,
    ) -> Vec<Option<(usize, Cost)>> {
        if !self.row_fresh(a, now, max_age) {
            return vec![None; dests.len()];
        }
        let row_a = self.row_ref(a).expect("fresh row present");
        dests
            .iter()
            .map(|&d| {
                if d == a || !self.row_fresh(d, now, max_age) {
                    return None;
                }
                let row_d = self.row_ref(d).expect("fresh row present");
                best_one_hop_rows(&row_a, &row_d, a, d).map(|(h, c)| (h, f64::from(c)))
            })
            .collect()
    }

    /// All one-hop options from `a` to `b` with finite cost, sorted by
    /// cost (the §4.2 "redundant link-state information" scavenging
    /// uses this over the rows a node happens to hold). Only present,
    /// fresh relay rows participate — which for a sparse store is an
    /// `O(√n)` scan instead of `O(n)`. The per-candidate probes into
    /// row `a` ascend with `present_rows`, so they ride a [`RowCursor`]
    /// (amortized `O(1)` per candidate) rather than a fresh binary
    /// search each.
    fn one_hop_options(&self, a: usize, b: usize, now: f64, max_age: f64) -> Vec<(usize, Cost)> {
        if a == b || !self.row_fresh(a, now, max_age) {
            return Vec::new();
        }
        let row_a = self.row_ref(a).expect("fresh row present");
        let mut cur_a = row_a.cursor();
        let mut out = Vec::new();
        for h in self.present_rows() {
            if h == a || h == b {
                continue;
            }
            if !self.row_fresh(h, now, max_age) {
                continue;
            }
            let leg1 = cur_a.cost_u32(h);
            if leg1 == INFINITE_COST_U32 {
                continue;
            }
            let leg2 = self.entry(h, b).cost_u32();
            if leg2 == INFINITE_COST_U32 {
                continue;
            }
            out.push((h, f64::from(leg1 + leg2)));
        }
        out.sort_by(|x, y| x.1.partial_cmp(&y.1).unwrap().then(x.0.cmp(&y.0)));
        out
    }

    /// Generalized §4.2 scavenging: candidate detours `a → r₁ → … → b`
    /// through up to `max_hops` intermediate relays (`max_hops == 1`
    /// reproduces [`one_hop_options`](LinkStateStore::one_hop_options)
    /// exactly, entry for entry). Only present, *fresh* relay rows
    /// participate — `O(√n)` relays for a quorum node — and paths are
    /// simple by construction, so a candidate can never revisit a node.
    ///
    /// Returns one option per viable first relay: the full path
    /// (`path[0] == a`, `path.last() == b`), its total cost, and the
    /// *remaining* cost after the first leg — the cost the first relay
    /// effectively advertises for the rest of the path, which is what
    /// the feasibility discipline compares against its feasibility
    /// distance. Sorted by total cost, lowest first-relay index on
    /// ties. The hop-layered relaxation runs `O(k·√n·√n)` integer
    /// additions off the per-tick hot path (failover only); the
    /// per-tick round-two kernel is untouched.
    fn k_hop_options(
        &self,
        a: usize,
        b: usize,
        max_hops: usize,
        now: f64,
        max_age: f64,
    ) -> Vec<(Vec<usize>, Cost, Cost)> {
        if a == b || max_hops == 0 || !self.row_fresh(a, now, max_age) {
            return Vec::new();
        }
        let relays: Vec<usize> = self
            .present_rows()
            .into_iter()
            .filter(|&r| r != a && r != b && self.row_fresh(r, now, max_age))
            .collect();
        // best[i]: cheapest known tail `relays[i] → … → b` and its cost,
        // grown one relay per layer (classic hop-bounded relaxation).
        let mut best: Vec<Option<(u32, Vec<usize>)>> = relays
            .iter()
            .map(|&r| {
                let c = self.entry(r, b).cost_u32();
                (c != INFINITE_COST_U32).then(|| (c, vec![r, b]))
            })
            .collect();
        for _ in 1..max_hops {
            let prev = best.clone();
            for (i, &r) in relays.iter().enumerate() {
                let row_r = self.row_ref(r).expect("fresh row present");
                let mut cur = row_r.cursor();
                for (j, &s) in relays.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let Some((tail_cost, tail)) = &prev[j] else {
                        continue;
                    };
                    let leg = cur.cost_u32(s);
                    if leg == INFINITE_COST_U32 || tail.contains(&r) {
                        continue;
                    }
                    let total = leg + tail_cost;
                    if best[i].as_ref().is_none_or(|(c, _)| total < *c) {
                        let mut path = Vec::with_capacity(tail.len() + 1);
                        path.push(r);
                        path.extend_from_slice(tail);
                        debug_assert!(path.len() <= max_hops + 1);
                        best[i] = Some((total, path));
                    }
                }
            }
        }
        let row_a = self.row_ref(a).expect("fresh row present");
        let mut cur_a = row_a.cursor();
        let mut out = Vec::new();
        for (i, &r) in relays.iter().enumerate() {
            let Some((tail_cost, tail)) = &best[i] else {
                continue;
            };
            let leg1 = cur_a.cost_u32(r);
            if leg1 == INFINITE_COST_U32 {
                continue;
            }
            let mut path = Vec::with_capacity(tail.len() + 1);
            path.push(a);
            path.extend_from_slice(tail);
            out.push((path, f64::from(leg1 + tail_cost), f64::from(*tail_cost)));
        }
        out.sort_by(|x, y| x.1.partial_cmp(&y.1).unwrap().then(x.0[1].cmp(&y.0[1])));
        out
    }

    /// Does any fresh row report `dst` as alive? (Used to decide
    /// whether a destination has failed outright — section 4.1's "check
    /// if any of its rendezvous clients' link-state tables show that
    /// Dst is reachable".)
    fn anyone_reaches(&self, dst: usize, now: f64, max_age: f64) -> bool {
        self.present_rows().into_iter().any(|origin| {
            origin != dst && self.row_fresh(origin, now, max_age) && self.entry(origin, dst).alive
        })
    }

    /// The cost of the path `a → h → b` using current rows; infinite
    /// when anything is missing. `h == b` means the direct link.
    fn path_cost(&self, a: usize, h: usize, b: usize) -> Cost {
        if h == b {
            return self.cost(a, b);
        }
        let c = self.cost(a, h) + self.cost(h, b);
        if c.is_finite() {
            c
        } else {
            INFINITE_COST
        }
    }
}

/// One stored row: receipt time plus the live entries as parallel
/// wire-quantized lanes ([`LaneRow`]), ascending by destination.
/// Dead/unknown destinations are not materialised.
#[derive(Debug, Clone)]
struct StoredRow {
    received_at: f64,
    lanes: LaneRow,
}

/// The sparse row store: `origin → (receipt time, live-entry lanes)`
/// for exactly the rows this node actually receives.
///
/// A quorum node holds its own row plus its `~2√n` rendezvous clients'
/// rows, and each row stores only its live entries, in struct-of-arrays
/// lanes at ~5 B/entry — which under entitled + sampled probing is
/// `O(√n)` per row, so per-node state is `O(n)` where the dense table
/// needs `O(n²)`. Lookups are `O(log √n)` map + `O(log k)` row binary
/// search; the round-two kernel merge-joins the two rows of the pair in
/// `O(k)`, or streams their latency lanes elementwise when the rows
/// share a destination lane. The `row_bytes_lanes` / `row_bytes_aos`
/// gauge pair reports the stored bytes against what the replaced
/// array-of-structs layout would have held.
#[derive(Debug, Clone)]
pub struct RowStore {
    n: usize,
    rows: BTreeMap<usize, StoredRow>,
    /// Maximum rows this node's role entitles it to, debug-asserted on
    /// insert; `None` = unbounded (the full-mesh baseline).
    entitlement: Option<usize>,
    /// Rows older than this are evicted when a new row arrives at the
    /// entitlement boundary. One-time senders (e.g. nodes that briefly
    /// selected us as a failover rendezvous) would otherwise accumulate
    /// rows forever; a stale row is useless to the kernel, so shedding
    /// it is free.
    stale_after: Option<f64>,
    /// High-water mark of `row_count` over the store's lifetime.
    peak_rows: usize,
    telemetry: Telemetry,
    rows_merged: Counter,
    rows_evicted: Counter,
    rows_held: Gauge,
    row_bytes_lanes: Gauge,
    row_bytes_aos: Gauge,
}

impl RowStore {
    /// An empty, unbounded store over `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        let telemetry = Telemetry::disabled();
        let rows_merged = telemetry.counter("linkstate", "rows_merged");
        let rows_evicted = telemetry.counter("linkstate", "rows_evicted");
        let rows_held = telemetry.gauge("linkstate", "rows_held");
        let row_bytes_lanes = telemetry.gauge("linkstate", "row_bytes_lanes");
        let row_bytes_aos = telemetry.gauge("linkstate", "row_bytes_aos");
        RowStore {
            n,
            rows: BTreeMap::new(),
            entitlement: None,
            stale_after: None,
            peak_rows: 0,
            telemetry,
            rows_merged,
            rows_evicted,
            rows_held,
            row_bytes_lanes,
            row_bytes_aos,
        }
    }

    /// Attach a telemetry handle: row merges/evictions count under
    /// component `"linkstate"` and enter the event journal. Call before
    /// the store receives traffic — the attached registry starts with
    /// fresh (zeroed) cells.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.rows_merged = telemetry.counter("linkstate", "rows_merged");
        self.rows_evicted = telemetry.counter("linkstate", "rows_evicted");
        self.rows_held = telemetry.gauge("linkstate", "rows_held");
        self.row_bytes_lanes = telemetry.gauge("linkstate", "row_bytes_lanes");
        self.row_bytes_aos = telemetry.gauge("linkstate", "row_bytes_aos");
        self.telemetry = telemetry;
        self
    }

    /// Refresh the held-rows gauge and the stored-bytes gauge pair:
    /// actual lane bytes versus what the replaced array-of-structs
    /// `(u16, LinkEntry)` layout would hold for the same entries — the
    /// memory win the scale study exports.
    fn update_size_gauges(&self) {
        self.rows_held.set(self.rows.len() as u64);
        let entries: usize = self.rows.values().map(|r| r.lanes.len()).sum();
        self.row_bytes_lanes
            .set((entries * LaneRow::ENTRY_BYTES) as u64);
        self.row_bytes_aos
            .set((entries * std::mem::size_of::<(u16, LinkEntry)>()) as u64);
    }

    /// Count one merged row (counter + journal + size gauges).
    fn note_merge(&mut self, origin: usize, now: f64) {
        self.rows_merged.inc();
        self.update_size_gauges();
        self.telemetry.event(
            now,
            Severity::Debug,
            EventKind::RowMerged {
                origin: origin as u32,
            },
        );
    }

    /// An empty store that debug-asserts `row_count ≤ max_rows` on
    /// every insert — the `O(√n)` entitlement guard. When a new row
    /// arrives at the boundary, rows older than `stale_after` (the
    /// staleness window: stale rows are dead weight the kernel already
    /// ignores) are evicted first, so only *fresh* rows beyond the
    /// entitlement trip the assertion.
    #[must_use]
    pub fn with_entitlement(n: usize, max_rows: usize, stale_after: f64) -> Self {
        RowStore {
            entitlement: Some(max_rows),
            stale_after: Some(stale_after),
            ..RowStore::new(n)
        }
    }

    /// The configured entitlement, if any.
    #[must_use]
    pub fn entitlement(&self) -> Option<usize> {
        self.entitlement
    }

    /// The most rows ever held simultaneously — the state-accounting
    /// high-water mark the scale experiment reports.
    #[must_use]
    pub fn peak_rows(&self) -> usize {
        self.peak_rows
    }

    /// Make room for an insert at `now`: at the entitlement boundary,
    /// shed rows the staleness window has already invalidated.
    fn evict_stale(&mut self, now: f64) {
        if let (Some(limit), Some(window)) = (self.entitlement, self.stale_after) {
            if self.rows.len() >= limit {
                let stale: Vec<usize> = self
                    .rows
                    .iter()
                    .filter(|(_, r)| now - r.received_at > window)
                    .map(|(&origin, _)| origin)
                    .collect();
                for origin in stale {
                    self.rows.remove(&origin);
                    self.rows_evicted.inc();
                    self.telemetry.event(
                        now,
                        Severity::Info,
                        EventKind::RowEvicted {
                            origin: origin as u32,
                        },
                    );
                }
                self.update_size_gauges();
            }
        }
    }

    fn note_insert(&mut self) {
        self.peak_rows = self.peak_rows.max(self.rows.len());
        if let Some(limit) = self.entitlement {
            debug_assert!(
                self.rows.len() <= limit,
                "row store holds {} fresh rows, entitlement is {limit} — \
                 a quorum node's state must stay O(√n)",
                self.rows.len()
            );
        }
    }
}

impl RowStore {
    /// The stale-replay guard: an incoming *versioned* row is rejected
    /// when the held row is versioned and strictly newer. Zero seqnos
    /// (legacy unversioned rows) always pass — no flag day.
    fn replay_rejected(&self, origin: usize, incoming: u16) -> bool {
        if incoming == 0 {
            return false;
        }
        let held = self.rows.get(&origin).map_or(0, |s| s.lanes.seqno());
        held != 0 && seqno_newer(incoming, held)
    }

    /// Insert or replace a row already reduced to its live-entry lanes.
    fn put_row(&mut self, origin: usize, lanes: LaneRow, now: f64) {
        match self.rows.get_mut(&origin) {
            Some(slot) => {
                slot.lanes = lanes;
                slot.received_at = now;
            }
            None => {
                self.evict_stale(now);
                self.rows.insert(
                    origin,
                    StoredRow {
                        received_at: now,
                        lanes,
                    },
                );
                self.note_insert();
            }
        }
        self.note_merge(origin, now);
    }
}

impl LinkStateStore for RowStore {
    fn len(&self) -> usize {
        self.n
    }

    fn update_row(&mut self, origin: usize, entries: &[LinkEntry], now: f64) {
        assert!(origin < self.n, "row {origin} out of range");
        assert_eq!(entries.len(), self.n, "row must have n entries");
        self.put_row(origin, LaneRow::from_dense(entries), now);
    }

    fn update_row_sparse(&mut self, origin: usize, entries: &[(u16, LinkEntry)], now: f64) {
        assert!(origin < self.n, "row {origin} out of range");
        assert!(
            entries.last().is_none_or(|&(d, _)| (d as usize) < self.n),
            "sparse row destination out of range"
        );
        self.put_row(origin, LaneRow::from_pairs(entries), now);
    }

    fn update_row_versioned(
        &mut self,
        origin: usize,
        entries: &[LinkEntry],
        seqno: u16,
        retractions: &[u16],
        now: f64,
    ) -> bool {
        assert!(origin < self.n, "row {origin} out of range");
        assert_eq!(entries.len(), self.n, "row must have n entries");
        if self.replay_rejected(origin, seqno) {
            return false;
        }
        let lanes = LaneRow::from_dense(entries).with_version(seqno, retractions);
        self.put_row(origin, lanes, now);
        true
    }

    fn update_row_sparse_versioned(
        &mut self,
        origin: usize,
        entries: &[(u16, LinkEntry)],
        seqno: u16,
        retractions: &[u16],
        now: f64,
    ) -> bool {
        assert!(origin < self.n, "row {origin} out of range");
        assert!(
            entries.last().is_none_or(|&(d, _)| (d as usize) < self.n),
            "sparse row destination out of range"
        );
        if self.replay_rejected(origin, seqno) {
            return false;
        }
        let lanes = LaneRow::from_pairs(entries).with_version(seqno, retractions);
        self.put_row(origin, lanes, now);
        true
    }

    fn row_seqno(&self, origin: usize) -> u16 {
        self.rows.get(&origin).map_or(0, |s| s.lanes.seqno())
    }

    fn row_retracts(&self, origin: usize, dst: usize) -> bool {
        self.rows
            .get(&origin)
            .is_some_and(|s| s.lanes.retracted().binary_search(&(dst as u16)).is_ok())
    }

    fn row_retractions(&self, origin: usize) -> Vec<u16> {
        self.rows
            .get(&origin)
            .map_or_else(Vec::new, |s| s.lanes.retracted().to_vec())
    }

    fn update_entry(&mut self, origin: usize, dst: usize, entry: LinkEntry, now: f64) {
        assert!(origin < self.n && dst < self.n);
        if let Some(slot) = self.rows.get_mut(&origin) {
            slot.lanes.set(dst as u16, entry);
            slot.received_at = now;
            self.note_merge(origin, now);
        } else {
            let lanes = if entry.alive {
                LaneRow::from_pairs(&[(dst as u16, entry)])
            } else {
                LaneRow::default()
            };
            self.put_row(origin, lanes, now);
        }
    }

    fn clear_row(&mut self, origin: usize) {
        self.rows.remove(&origin);
        self.update_size_gauges();
    }

    fn row_ref(&self, origin: usize) -> Option<RowRef<'_>> {
        self.rows.get(&origin).map(|s| s.lanes.as_row_ref(self.n))
    }

    fn row_time(&self, origin: usize) -> Option<f64> {
        self.rows.get(&origin).map(|s| s.received_at)
    }

    fn present_rows(&self) -> Vec<usize> {
        self.rows.keys().copied().collect()
    }

    fn row_count(&self) -> usize {
        self.rows.len()
    }

    fn entry_count(&self) -> usize {
        self.rows.values().map(|r| r.lanes.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::LinkStateTable;

    fn live_row(costs: &[u16]) -> Vec<LinkEntry> {
        costs.iter().map(|&c| LinkEntry::live(c, 0.0)).collect()
    }

    /// The 4-node detour world used by the table tests, loaded into both
    /// stores.
    fn detour_rows() -> Vec<Vec<LinkEntry>> {
        vec![
            live_row(&[0, 50, 200, 500]),
            live_row(&[50, 0, 80, 100]),
            live_row(&[200, 80, 0, 90]),
            live_row(&[500, 100, 90, 0]),
        ]
    }

    fn both_stores() -> (LinkStateTable, RowStore) {
        let mut dense = LinkStateTable::new(4);
        let mut sparse = RowStore::new(4);
        for (i, row) in detour_rows().iter().enumerate() {
            dense.update_row(i, row, 10.0);
            sparse.update_row(i, row, 10.0);
        }
        (dense, sparse)
    }

    /// The kernel is written once, so given identical rows the two
    /// stores must agree on every pair.
    #[test]
    fn stores_agree_on_the_kernel() {
        let (dense, sparse) = both_stores();
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(
                    dense.best_one_hop(a, b, 11.0, 45.0),
                    sparse.best_one_hop(a, b, 11.0, 45.0),
                    "pair ({a},{b})"
                );
                assert_eq!(
                    dense.one_hop_options(a, b, 11.0, 45.0),
                    sparse.one_hop_options(a, b, 11.0, 45.0)
                );
            }
        }
        for dst in 0..4 {
            assert_eq!(
                dense.anyone_reaches(dst, 11.0, 45.0),
                sparse.anyone_reaches(dst, 11.0, 45.0)
            );
        }
    }

    #[test]
    fn sparse_holds_only_received_rows() {
        let mut s = RowStore::new(100);
        assert_eq!(s.row_count(), 0);
        assert_eq!(s.entry_count(), 0);
        s.update_row(7, &vec![LinkEntry::dead(); 100], 1.0);
        s.update_row(42, &vec![LinkEntry::dead(); 100], 2.0);
        assert_eq!(s.row_count(), 2);
        // All-dead rows are present (they have a receipt time) but
        // materialise zero entries — absent reads as dead.
        assert_eq!(s.entry_count(), 0);
        assert_eq!(s.present_rows(), vec![7, 42]);
        assert_eq!(s.row_time(7), Some(1.0));
        assert_eq!(s.row_time(8), None);
        assert!(s.row_ref(8).is_none());
        // Absent rows read as dead, like the dense table's initial state.
        assert!(s.cost(8, 9).is_infinite());
        assert_eq!(s.cost(8, 8), 0.0);
        // Refreshing a row does not grow the store.
        s.update_row(7, &vec![LinkEntry::dead(); 100], 3.0);
        assert_eq!(s.row_count(), 2);
        assert_eq!(s.row_time(7), Some(3.0));
        // Clearing removes the allocation entirely.
        s.clear_row(7);
        assert_eq!(s.row_count(), 1);
        assert_eq!(s.peak_rows(), 2, "high-water mark is sticky");
    }

    #[test]
    fn rows_store_live_entries_only() {
        let mut s = RowStore::new(100);
        let mut row = vec![LinkEntry::dead(); 100];
        row[3] = LinkEntry::live(10, 0.0);
        row[64] = LinkEntry::live(20, 0.01);
        s.update_row(7, &row, 1.0);
        assert_eq!(s.entry_count(), 2, "dense input reduced to live entries");
        assert_eq!(s.entry(7, 64).latency_ms, 20);
        assert!(!s.entry(7, 4).alive);
        assert_eq!(s.row_dense(7).unwrap(), row);
        // The sparse ingest path stores the same thing.
        let mut t = RowStore::new(100);
        t.update_row_sparse(
            7,
            &[
                (3, LinkEntry::live(10, 0.0)),
                (64, LinkEntry::live(20, 0.01)),
            ],
            1.0,
        );
        assert_eq!(t.row_dense(7).unwrap(), row);
        assert_eq!(t.entry_count(), 2);
    }

    #[test]
    fn update_entry_creates_sparse_row() {
        let mut s = RowStore::new(5);
        s.update_entry(2, 4, LinkEntry::live(30, 0.0), 1.0);
        assert_eq!(s.row_count(), 1);
        assert_eq!(s.entry(2, 4).latency_ms, 30);
        assert!(!s.entry(2, 3).alive);
        assert_eq!(s.row_time(2), Some(1.0));
        // Killing the entry removes it from the stored row; the row and
        // its receipt time survive.
        s.update_entry(2, 4, LinkEntry::dead(), 2.0);
        assert_eq!(s.row_count(), 1);
        assert_eq!(s.entry_count(), 0);
        assert!(!s.entry(2, 4).alive);
        assert_eq!(s.row_time(2), Some(2.0));
        // Inserting out of order lands sorted.
        s.update_entry(2, 3, LinkEntry::live(9, 0.0), 3.0);
        s.update_entry(2, 1, LinkEntry::live(8, 0.0), 3.0);
        assert_eq!(
            s.row_ref(2).unwrap().iter_live().collect::<Vec<_>>(),
            vec![(1, LinkEntry::live(8, 0.0)), (3, LinkEntry::live(9, 0.0))]
        );
    }

    /// Partial (sparse) rows run the same merge-join kernel as dense
    /// rows holding the identical information.
    #[test]
    fn kernel_parity_on_partial_rows() {
        let n = 12;
        let mut dense = LinkStateTable::new(n);
        let mut sparse = RowStore::new(n);
        // Row a: live to {1, 3, 5, 7}; row b: live to {3, 4, 7, 11}.
        let rows: Vec<(usize, Vec<(u16, LinkEntry)>)> = vec![
            (
                0,
                vec![
                    (1, LinkEntry::live(10, 0.0)),
                    (3, LinkEntry::live(40, 0.0)),
                    (5, LinkEntry::live(25, 0.0)),
                    (7, LinkEntry::live(60, 0.0)),
                ],
            ),
            (
                9,
                vec![
                    (3, LinkEntry::live(15, 0.0)),
                    (4, LinkEntry::live(5, 0.0)),
                    (7, LinkEntry::live(30, 0.0)),
                    (11, LinkEntry::live(80, 0.0)),
                ],
            ),
        ];
        for (origin, entries) in &rows {
            dense.update_row_sparse(*origin, entries, 1.0);
            sparse.update_row_sparse(*origin, entries, 1.0);
        }
        let d = dense.best_one_hop(0, 9, 2.0, 45.0);
        assert_eq!(d, sparse.best_one_hop(0, 9, 2.0, 45.0));
        // Best hop is the live-intersection minimum: h=3 (40+15=55)
        // beats h=7 (60+30=90); no direct link exists.
        assert_eq!(d, Some((3, 55.0)));
        assert_eq!(
            dense.one_hop_options(0, 9, 2.0, 45.0),
            sparse.one_hop_options(0, 9, 2.0, 45.0)
        );
    }

    #[test]
    fn one_hop_options_skip_stale_and_absent_relays() {
        let (_, mut s) = both_stores();
        s.clear_row(1);
        let opts = s.one_hop_options(0, 3, 11.0, 45.0);
        assert_eq!(opts, vec![(2, 290.0)]);
        // A stale relay row disqualifies too.
        s.update_row(2, &detour_rows()[2], -100.0);
        assert!(s.one_hop_options(0, 3, 11.0, 45.0).is_empty());
    }

    #[test]
    fn entitlement_tracks_peak() {
        let mut s = RowStore::with_entitlement(10, 4, 45.0);
        assert_eq!(s.entitlement(), Some(4));
        for i in 0..4 {
            s.update_row(i, &[LinkEntry::dead(); 10], 0.0);
        }
        assert_eq!(s.peak_rows(), 4);
    }

    #[test]
    fn capacity_pressure_evicts_stale_rows_first() {
        let mut s = RowStore::with_entitlement(10, 2, 45.0);
        s.update_row(0, &[LinkEntry::dead(); 10], 0.0);
        s.update_row(1, &[LinkEntry::dead(); 10], 50.0);
        // At t=100, row 0 (age 100) and row 1 (age 50) are both stale:
        // a new arrival at the boundary sheds them instead of tripping
        // the entitlement assertion.
        s.update_row(2, &[LinkEntry::dead(); 10], 100.0);
        assert_eq!(s.present_rows(), vec![2]);
        // A fresh row is never evicted by pressure.
        s.update_row(3, &[LinkEntry::dead(); 10], 101.0);
        assert_eq!(s.present_rows(), vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "entitlement")]
    #[cfg(debug_assertions)]
    fn fresh_overflow_is_debug_asserted() {
        // All rows fresh: eviction frees nothing, the guard must fire.
        let mut s = RowStore::with_entitlement(10, 2, 45.0);
        for i in 0..3 {
            s.update_row(i, &[LinkEntry::dead(); 10], 1.0);
        }
    }

    #[test]
    fn telemetry_counts_merges_and_evictions() {
        let telemetry = Telemetry::new(7);
        let mut s = RowStore::with_entitlement(10, 2, 45.0).with_telemetry(telemetry.clone());
        s.update_row(0, &[LinkEntry::dead(); 10], 0.0);
        s.update_row(1, &[LinkEntry::dead(); 10], 50.0);
        // Both prior rows are stale at t=100: the boundary insert
        // sheds them, and every arrival counted as a merge.
        s.update_row(2, &[LinkEntry::dead(); 10], 100.0);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter(7, "linkstate", "rows_merged"), Some(3));
        assert_eq!(snap.counter(7, "linkstate", "rows_evicted"), Some(2));
        assert_eq!(snap.gauge(7, "linkstate", "rows_held"), Some(1));
        assert!(telemetry
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::RowEvicted { origin: 0 })));
    }

    /// The cursor agrees with fresh `get`/`cost_u32` lookups under any
    /// probe order — ascending (the fast path), backwards (the binary
    /// search fallback), repeats, and misses — on every row variant.
    #[test]
    fn cursor_matches_fresh_lookups_in_any_order() {
        let n = 12;
        let mut row = vec![LinkEntry::dead(); n];
        for d in [1usize, 4, 5, 9, 11] {
            row[d] = LinkEntry::live(10 * d as u16, 0.01);
        }
        let pairs: Vec<(u16, LinkEntry)> = row
            .iter()
            .enumerate()
            .filter(|(_, e)| e.alive)
            .map(|(d, e)| (d as u16, *e))
            .collect();
        let lanes = LaneRow::from_dense(&row);
        let views = [
            RowRef::Dense(&row),
            RowRef::Sparse {
                width: n,
                entries: &pairs,
            },
            lanes.as_row_ref(n),
        ];
        let probes = [0usize, 1, 4, 4, 9, 11, 2, 5, 10, 0, 11, 3];
        for view in views {
            let mut cur = view.cursor();
            for &d in &probes {
                assert_eq!(cur.get(d), view.get(d), "get({d}) via cursor");
            }
            let mut cur = view.cursor();
            for &d in &probes {
                assert_eq!(
                    cur.cost_u32(d),
                    view.cost_u32(d),
                    "cost_u32({d}) via cursor"
                );
            }
        }
    }

    /// Lane rows store the exact wire bytes: building from entries that
    /// need wire clamping (latency 65535, off-grid loss) equals
    /// building from their decoded wire forms.
    #[test]
    fn lane_rows_are_wire_exact() {
        let row = vec![
            LinkEntry::live(u16::MAX, 0.123), // latency clamps to 65534
            LinkEntry::dead(),
            LinkEntry::live(0, 0.9999), // loss saturates at 63.5 %
        ];
        let wired: Vec<LinkEntry> = row.iter().map(|e| LinkEntry::decode(e.encode())).collect();
        assert_eq!(LaneRow::from_dense(&row), LaneRow::from_dense(&wired));
        let lanes = LaneRow::from_dense(&row);
        let view = lanes.as_row_ref(3);
        assert_eq!(view.get(0), LinkEntry::decode(row[0].encode()));
        assert_eq!(view.get(0).latency_ms, u16::MAX - 1);
        assert_eq!(view.get(1), LinkEntry::dead());
    }

    #[test]
    fn seqno_comparison_is_circular() {
        assert!(seqno_newer(1, 2));
        assert!(!seqno_newer(2, 1));
        assert!(!seqno_newer(5, 5));
        // Wrap-around: 2 is newer than 65535, not 32767 behind it.
        assert!(seqno_newer(u16::MAX, 2));
        assert!(!seqno_newer(2, u16::MAX));
    }

    #[test]
    fn versioned_updates_reject_stale_replays() {
        let n = 4;
        let mut s = RowStore::new(n);
        assert!(s.update_row_versioned(0, &live_row(&[0, 10, 20, 30]), 5, &[], 1.0));
        assert_eq!(s.row_seqno(0), 5);
        // Same seqno refreshes (periodic re-announcement), newer advances.
        assert!(s.update_row_versioned(0, &live_row(&[0, 11, 20, 30]), 5, &[], 2.0));
        assert_eq!(s.row_time(0), Some(2.0));
        assert!(s.update_row_sparse_versioned(0, &[(1, LinkEntry::live(9, 0.0))], 6, &[2], 3.0));
        assert_eq!(s.row_seqno(0), 6);
        assert!(s.row_retracts(0, 2));
        assert!(!s.row_retracts(0, 1));
        // A delayed replay of the older row must not resurrect dst 2.
        assert!(!s.update_row_versioned(0, &live_row(&[0, 10, 20, 30]), 5, &[], 4.0));
        assert_eq!(s.row_seqno(0), 6);
        assert_eq!(s.row_time(0), Some(3.0), "rejected replay leaves the row");
        assert!(!s.entry(0, 2).alive);
        // Unversioned rows (seqno 0) always pass — no flag day.
        assert!(s.update_row_versioned(0, &live_row(&[0, 10, 20, 30]), 0, &[], 5.0));
        assert_eq!(s.row_seqno(0), 0);
        assert!(!s.row_retracts(0, 2));
    }

    /// `k_hop_options` with one hop is `one_hop_options`, option for
    /// option; with more hops it splices paths scavenging can't see.
    #[test]
    fn k_hop_options_generalize_one_hop() {
        let n = 5;
        let mut s = RowStore::new(n);
        // A chain 0 → 1 → 2 → 3 → 4 plus a dead-end shortcut 0 → 2.
        let inf = u16::MAX;
        let rows: &[&[u16]] = &[
            &[0, 10, 50, inf, inf],
            &[10, 0, 10, inf, inf],
            &[50, 10, 0, 10, inf],
            &[inf, inf, 10, 0, 10],
            &[inf, inf, inf, 10, 0],
        ];
        for (origin, costs) in rows.iter().enumerate() {
            let entries: Vec<LinkEntry> = costs
                .iter()
                .map(|&c| {
                    if c == inf {
                        LinkEntry::dead()
                    } else {
                        LinkEntry::live(c, 0.0)
                    }
                })
                .collect();
            s.update_row(origin, &entries, 10.0);
        }
        // k = 1 parity with the scavenging kernel.
        for (a, b) in [(0, 2), (0, 4), (1, 3), (2, 0)] {
            let one: Vec<(usize, Cost)> = s.one_hop_options(a, b, 10.5, 45.0);
            let k: Vec<(usize, Cost)> = s
                .k_hop_options(a, b, 1, 10.5, 45.0)
                .into_iter()
                .map(|(path, cost, _)| {
                    assert_eq!(path.len(), 3);
                    assert_eq!((path[0], path[2]), (a, b));
                    (path[1], cost)
                })
                .collect();
            assert_eq!(one, k, "pair ({a},{b})");
        }
        // 0 → 4 needs at least two intermediate relays; 1-hop scavenging
        // finds nothing, 2-hop pays the expensive 0 → 2 link, 3-hop
        // routes around it.
        assert!(s.k_hop_options(0, 4, 1, 10.5, 45.0).is_empty());
        let two = s.k_hop_options(0, 4, 2, 10.5, 45.0);
        assert_eq!(two[0].0, vec![0, 2, 3, 4]);
        assert_eq!(two[0].1, 70.0);
        let opts = s.k_hop_options(0, 4, 3, 10.5, 45.0);
        let (path, cost, remaining) = &opts[0];
        assert_eq!(path, &[0, 1, 2, 3, 4]);
        assert_eq!(*cost, 40.0);
        assert_eq!(*remaining, 30.0, "cost the first relay advertises");
        // Wider budgets don't invent longer paths when shorter ones win.
        assert_eq!(
            s.k_hop_options(0, 4, 8, 10.5, 45.0)[0].0,
            vec![0, 1, 2, 3, 4]
        );
        // Paths are simple: no candidate revisits a node.
        for (path, _, _) in s.k_hop_options(0, 4, 8, 10.5, 45.0) {
            let mut seen = path.clone();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), path.len(), "path {path:?} revisits a node");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_row_bounds_checked() {
        RowStore::new(2).update_row(2, &live_row(&[0, 1]), 0.0);
    }

    #[test]
    #[should_panic(expected = "n entries")]
    fn update_row_length_checked() {
        RowStore::new(3).update_row(0, &live_row(&[0, 1]), 0.0);
    }
}
