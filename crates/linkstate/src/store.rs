//! The link-state storage abstraction and the sparse row store.
//!
//! The paper's headline result is that quorum-grid rendezvous cuts
//! per-node state and traffic from `O(n²)` to `O(n√n)`: a quorum node
//! receives link-state rows only from its `~2√n` rendezvous clients, so
//! there is no reason for it to *allocate* an `n × n` matrix. This
//! module makes storage honour that bound:
//!
//! * [`LinkStateStore`] — the trait both stores implement. The required
//!   methods are pure storage (put/get/drop rows); the **round-two
//!   kernel** ([`best_one_hop`](LinkStateStore::best_one_hop),
//!   [`one_hop_options`](LinkStateStore::one_hop_options),
//!   [`anyone_reaches`](LinkStateStore::anyone_reaches)) is written once
//!   as provided methods, so the dense baseline and the sparse store
//!   run the identical routing computation.
//! * [`RowStore`] — a sparse indexed map `origin → (receipt time, row)`
//!   holding exactly the rows a node's role entitles it to: its own
//!   row plus its rendezvous clients' rows (`O(√n)` rows of `n`
//!   entries each ⇒ `O(n√n)` per-node state). An optional row
//!   *entitlement* is debug-asserted on insert, so a protocol bug that
//!   re-grows `O(n)` rows fails loudly in tests instead of silently
//!   reintroducing the quadratic table.
//!
//! The dense [`LinkStateTable`](crate::table::LinkStateTable) stays for
//! the full-mesh baseline (which genuinely holds all `n` rows, each
//! dense lookups `O(1)`) and as the reference implementation in tests.

use crate::entry::{Cost, LinkEntry, INFINITE_COST};
use apor_telemetry::{Counter, EventKind, Gauge, Severity, Telemetry};
use std::collections::BTreeMap;

/// Storage of link-state rows plus the round-two route computation.
///
/// Rows are full-width (`n` entries — the wire format of a link-state
/// message); what varies between implementations is *which* origins
/// have a row at all. "Present" means a row was received (it has a
/// receipt time); a present row may still be stale for routing — the
/// kernel methods apply the paper's 3-routing-interval freshness rule
/// (section 6.2.2) on top.
pub trait LinkStateStore {
    /// Number of nodes covered (row width).
    fn len(&self) -> usize;

    /// True when the store covers no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replace row `origin` with `entries`, stamped at `now` seconds.
    ///
    /// # Panics
    /// Panics if `entries.len() != len()` or `origin ≥ len()`.
    fn update_row(&mut self, origin: usize, entries: &[LinkEntry], now: f64);

    /// Update a single entry of a row (used for the node's own row,
    /// which its probers refresh incrementally). Creates the row (all
    /// other entries dead) when absent.
    fn update_entry(&mut self, origin: usize, dst: usize, entry: LinkEntry, now: f64);

    /// Forget a row (e.g. on membership change or client loss).
    fn clear_row(&mut self, origin: usize);

    /// Row `origin`, when present.
    fn row(&self, origin: usize) -> Option<&[LinkEntry]>;

    /// Receipt time of row `origin`; `None` = never received.
    fn row_time(&self, origin: usize) -> Option<f64>;

    /// The origins that currently have a row, ascending.
    fn present_rows(&self) -> Vec<usize>;

    /// Number of rows currently held — the state-accounting counter the
    /// scale experiments assert against (`O(√n)` for a quorum node).
    fn row_count(&self) -> usize;

    /// Number of link entries currently allocated (`row_count · n` —
    /// the per-node memory the paper bounds by `O(n√n)`).
    fn entry_count(&self) -> usize {
        self.row_count() * self.len()
    }

    // ------------------------------------------------------------------
    // Provided accessors
    // ------------------------------------------------------------------

    /// Age of row `origin` at time `now`, if ever received.
    fn row_age(&self, origin: usize, now: f64) -> Option<f64> {
        self.row_time(origin).map(|t| now - t)
    }

    /// Is row `origin` present and no older than `max_age` at `now`?
    fn row_fresh(&self, origin: usize, now: f64, max_age: f64) -> bool {
        self.row_age(origin, now).is_some_and(|a| a <= max_age)
    }

    /// The entry `origin → dst` (dead when the row is absent).
    fn entry(&self, origin: usize, dst: usize) -> LinkEntry {
        self.row(origin).map_or_else(LinkEntry::dead, |r| r[dst])
    }

    /// Routing cost of `origin → dst` (infinite when dead/unknown).
    fn cost(&self, origin: usize, dst: usize) -> Cost {
        if origin == dst {
            return 0.0;
        }
        self.entry(origin, dst).cost()
    }

    // ------------------------------------------------------------------
    // The round-two kernel — written once, over the trait
    // ------------------------------------------------------------------

    /// **The round-two kernel.** Best one-hop path `a → h → b` (or the
    /// direct link, represented as `h == b`) computable from rows `a`
    /// and `b`, both of which must be fresh (≤ `max_age` at `now`).
    ///
    /// Link costs are assumed symmetric (paper section 3), so the path
    /// cost is `row_a[h] + row_b[h]`; the direct cost is the *minimum*
    /// of the two directions' estimates (they may disagree
    /// transiently). Ties prefer the direct link, then the lowest hop
    /// index, making the recommendation deterministic across rendezvous
    /// servers with identical data.
    ///
    /// Returns `None` when either row is missing/stale or no finite
    /// path exists.
    fn best_one_hop(&self, a: usize, b: usize, now: f64, max_age: f64) -> Option<(usize, Cost)> {
        if a == b || !self.row_fresh(a, now, max_age) || !self.row_fresh(b, now, max_age) {
            return None;
        }
        let row_a = self.row(a).expect("fresh row present");
        let row_b = self.row(b).expect("fresh row present");
        let direct = row_a[b].cost().min(row_b[a].cost());
        let mut best_hop = b;
        let mut best_cost = direct;
        for h in 0..self.len() {
            if h == a || h == b {
                continue;
            }
            let c = row_a[h].cost() + row_b[h].cost();
            if c < best_cost {
                best_cost = c;
                best_hop = h;
            }
        }
        best_cost.is_finite().then_some((best_hop, best_cost))
    }

    /// All one-hop options from `a` to `b` with finite cost, sorted by
    /// cost (the §4.2 "redundant link-state information" scavenging
    /// uses this over the rows a node happens to hold). Only present,
    /// fresh relay rows participate — which for a sparse store is an
    /// `O(√n)` scan instead of `O(n)`.
    fn one_hop_options(&self, a: usize, b: usize, now: f64, max_age: f64) -> Vec<(usize, Cost)> {
        if a == b || !self.row_fresh(a, now, max_age) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for h in self.present_rows() {
            if h == a || h == b {
                continue;
            }
            if !self.row_fresh(h, now, max_age) {
                continue;
            }
            let via = self.entry(a, h).cost() + self.cost(h, b);
            if via.is_finite() {
                out.push((h, via));
            }
        }
        out.sort_by(|x, y| x.1.partial_cmp(&y.1).unwrap().then(x.0.cmp(&y.0)));
        out
    }

    /// Does any fresh row report `dst` as alive? (Used to decide
    /// whether a destination has failed outright — section 4.1's "check
    /// if any of its rendezvous clients' link-state tables show that
    /// Dst is reachable".)
    fn anyone_reaches(&self, dst: usize, now: f64, max_age: f64) -> bool {
        self.present_rows().into_iter().any(|origin| {
            origin != dst && self.row_fresh(origin, now, max_age) && self.entry(origin, dst).alive
        })
    }

    /// The cost of the path `a → h → b` using current rows; infinite
    /// when anything is missing. `h == b` means the direct link.
    fn path_cost(&self, a: usize, h: usize, b: usize) -> Cost {
        if h == b {
            return self.cost(a, b);
        }
        let c = self.cost(a, h) + self.cost(h, b);
        if c.is_finite() {
            c
        } else {
            INFINITE_COST
        }
    }
}

/// One stored row: receipt time plus the full-width entries.
#[derive(Debug, Clone)]
struct StoredRow {
    received_at: f64,
    entries: Box<[LinkEntry]>,
}

/// The sparse row store: `origin → (receipt time, row)` for exactly the
/// rows this node actually receives.
///
/// A quorum node holds its own row plus its `~2√n` rendezvous clients'
/// rows, so per-node state is `O(n√n)` — the paper's bound — instead of
/// the dense table's `O(n²)`. Lookups are `O(log √n)` (the map is tiny);
/// the round-two kernel touches only the two rows of the pair, exactly
/// as in the dense table.
#[derive(Debug, Clone)]
pub struct RowStore {
    n: usize,
    rows: BTreeMap<usize, StoredRow>,
    /// Maximum rows this node's role entitles it to, debug-asserted on
    /// insert; `None` = unbounded (the full-mesh baseline).
    entitlement: Option<usize>,
    /// Rows older than this are evicted when a new row arrives at the
    /// entitlement boundary. One-time senders (e.g. nodes that briefly
    /// selected us as a failover rendezvous) would otherwise accumulate
    /// rows forever; a stale row is useless to the kernel, so shedding
    /// it is free.
    stale_after: Option<f64>,
    /// High-water mark of `row_count` over the store's lifetime.
    peak_rows: usize,
    telemetry: Telemetry,
    rows_merged: Counter,
    rows_evicted: Counter,
    rows_held: Gauge,
}

impl RowStore {
    /// An empty, unbounded store over `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        let telemetry = Telemetry::disabled();
        let rows_merged = telemetry.counter("linkstate", "rows_merged");
        let rows_evicted = telemetry.counter("linkstate", "rows_evicted");
        let rows_held = telemetry.gauge("linkstate", "rows_held");
        RowStore {
            n,
            rows: BTreeMap::new(),
            entitlement: None,
            stale_after: None,
            peak_rows: 0,
            telemetry,
            rows_merged,
            rows_evicted,
            rows_held,
        }
    }

    /// Attach a telemetry handle: row merges/evictions count under
    /// component `"linkstate"` and enter the event journal. Call before
    /// the store receives traffic — the attached registry starts with
    /// fresh (zeroed) cells.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.rows_merged = telemetry.counter("linkstate", "rows_merged");
        self.rows_evicted = telemetry.counter("linkstate", "rows_evicted");
        self.rows_held = telemetry.gauge("linkstate", "rows_held");
        self.telemetry = telemetry;
        self
    }

    /// Count one merged row (counter + journal + held-rows gauge).
    fn note_merge(&mut self, origin: usize, now: f64) {
        self.rows_merged.inc();
        self.rows_held.set(self.rows.len() as u64);
        self.telemetry.event(
            now,
            Severity::Debug,
            EventKind::RowMerged {
                origin: origin as u32,
            },
        );
    }

    /// An empty store that debug-asserts `row_count ≤ max_rows` on
    /// every insert — the `O(√n)` entitlement guard. When a new row
    /// arrives at the boundary, rows older than `stale_after` (the
    /// staleness window: stale rows are dead weight the kernel already
    /// ignores) are evicted first, so only *fresh* rows beyond the
    /// entitlement trip the assertion.
    #[must_use]
    pub fn with_entitlement(n: usize, max_rows: usize, stale_after: f64) -> Self {
        RowStore {
            entitlement: Some(max_rows),
            stale_after: Some(stale_after),
            ..RowStore::new(n)
        }
    }

    /// The configured entitlement, if any.
    #[must_use]
    pub fn entitlement(&self) -> Option<usize> {
        self.entitlement
    }

    /// The most rows ever held simultaneously — the state-accounting
    /// high-water mark the scale experiment reports.
    #[must_use]
    pub fn peak_rows(&self) -> usize {
        self.peak_rows
    }

    /// Make room for an insert at `now`: at the entitlement boundary,
    /// shed rows the staleness window has already invalidated.
    fn evict_stale(&mut self, now: f64) {
        if let (Some(limit), Some(window)) = (self.entitlement, self.stale_after) {
            if self.rows.len() >= limit {
                let stale: Vec<usize> = self
                    .rows
                    .iter()
                    .filter(|(_, r)| now - r.received_at > window)
                    .map(|(&origin, _)| origin)
                    .collect();
                for origin in stale {
                    self.rows.remove(&origin);
                    self.rows_evicted.inc();
                    self.telemetry.event(
                        now,
                        Severity::Info,
                        EventKind::RowEvicted {
                            origin: origin as u32,
                        },
                    );
                }
                self.rows_held.set(self.rows.len() as u64);
            }
        }
    }

    fn note_insert(&mut self) {
        self.peak_rows = self.peak_rows.max(self.rows.len());
        if let Some(limit) = self.entitlement {
            debug_assert!(
                self.rows.len() <= limit,
                "row store holds {} fresh rows, entitlement is {limit} — \
                 a quorum node's state must stay O(√n)",
                self.rows.len()
            );
        }
    }
}

impl LinkStateStore for RowStore {
    fn len(&self) -> usize {
        self.n
    }

    fn update_row(&mut self, origin: usize, entries: &[LinkEntry], now: f64) {
        assert!(origin < self.n, "row {origin} out of range");
        assert_eq!(entries.len(), self.n, "row must have n entries");
        match self.rows.get_mut(&origin) {
            Some(slot) => {
                slot.entries.copy_from_slice(entries);
                slot.received_at = now;
            }
            None => {
                self.evict_stale(now);
                self.rows.insert(
                    origin,
                    StoredRow {
                        received_at: now,
                        entries: entries.into(),
                    },
                );
                self.note_insert();
            }
        }
        self.note_merge(origin, now);
    }

    fn update_entry(&mut self, origin: usize, dst: usize, entry: LinkEntry, now: f64) {
        assert!(origin < self.n && dst < self.n);
        match self.rows.get_mut(&origin) {
            Some(slot) => {
                slot.entries[dst] = entry;
                slot.received_at = now;
            }
            None => {
                self.evict_stale(now);
                let mut entries = vec![LinkEntry::dead(); self.n].into_boxed_slice();
                entries[dst] = entry;
                self.rows.insert(
                    origin,
                    StoredRow {
                        received_at: now,
                        entries,
                    },
                );
                self.note_insert();
            }
        }
        self.note_merge(origin, now);
    }

    fn clear_row(&mut self, origin: usize) {
        self.rows.remove(&origin);
        self.rows_held.set(self.rows.len() as u64);
    }

    fn row(&self, origin: usize) -> Option<&[LinkEntry]> {
        self.rows.get(&origin).map(|s| &*s.entries)
    }

    fn row_time(&self, origin: usize) -> Option<f64> {
        self.rows.get(&origin).map(|s| s.received_at)
    }

    fn present_rows(&self) -> Vec<usize> {
        self.rows.keys().copied().collect()
    }

    fn row_count(&self) -> usize {
        self.rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::LinkStateTable;

    fn live_row(costs: &[u16]) -> Vec<LinkEntry> {
        costs.iter().map(|&c| LinkEntry::live(c, 0.0)).collect()
    }

    /// The 4-node detour world used by the table tests, loaded into both
    /// stores.
    fn detour_rows() -> Vec<Vec<LinkEntry>> {
        vec![
            live_row(&[0, 50, 200, 500]),
            live_row(&[50, 0, 80, 100]),
            live_row(&[200, 80, 0, 90]),
            live_row(&[500, 100, 90, 0]),
        ]
    }

    fn both_stores() -> (LinkStateTable, RowStore) {
        let mut dense = LinkStateTable::new(4);
        let mut sparse = RowStore::new(4);
        for (i, row) in detour_rows().iter().enumerate() {
            dense.update_row(i, row, 10.0);
            sparse.update_row(i, row, 10.0);
        }
        (dense, sparse)
    }

    /// The kernel is written once, so given identical rows the two
    /// stores must agree on every pair.
    #[test]
    fn stores_agree_on_the_kernel() {
        let (dense, sparse) = both_stores();
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(
                    dense.best_one_hop(a, b, 11.0, 45.0),
                    sparse.best_one_hop(a, b, 11.0, 45.0),
                    "pair ({a},{b})"
                );
                assert_eq!(
                    dense.one_hop_options(a, b, 11.0, 45.0),
                    sparse.one_hop_options(a, b, 11.0, 45.0)
                );
            }
        }
        for dst in 0..4 {
            assert_eq!(
                dense.anyone_reaches(dst, 11.0, 45.0),
                sparse.anyone_reaches(dst, 11.0, 45.0)
            );
        }
    }

    #[test]
    fn sparse_holds_only_received_rows() {
        let mut s = RowStore::new(100);
        assert_eq!(s.row_count(), 0);
        assert_eq!(s.entry_count(), 0);
        s.update_row(7, &vec![LinkEntry::dead(); 100], 1.0);
        s.update_row(42, &vec![LinkEntry::dead(); 100], 2.0);
        assert_eq!(s.row_count(), 2);
        assert_eq!(s.entry_count(), 200);
        assert_eq!(s.present_rows(), vec![7, 42]);
        assert_eq!(s.row_time(7), Some(1.0));
        assert_eq!(s.row_time(8), None);
        assert!(s.row(8).is_none());
        // Absent rows read as dead, like the dense table's initial state.
        assert!(s.cost(8, 9).is_infinite());
        assert_eq!(s.cost(8, 8), 0.0);
        // Refreshing a row does not grow the store.
        s.update_row(7, &vec![LinkEntry::dead(); 100], 3.0);
        assert_eq!(s.row_count(), 2);
        assert_eq!(s.row_time(7), Some(3.0));
        // Clearing removes the allocation entirely.
        s.clear_row(7);
        assert_eq!(s.row_count(), 1);
        assert_eq!(s.entry_count(), 100);
        assert_eq!(s.peak_rows(), 2, "high-water mark is sticky");
    }

    #[test]
    fn update_entry_creates_sparse_row() {
        let mut s = RowStore::new(5);
        s.update_entry(2, 4, LinkEntry::live(30, 0.0), 1.0);
        assert_eq!(s.row_count(), 1);
        assert_eq!(s.entry(2, 4).latency_ms, 30);
        assert!(!s.entry(2, 3).alive);
        assert_eq!(s.row_time(2), Some(1.0));
    }

    #[test]
    fn one_hop_options_skip_stale_and_absent_relays() {
        let (_, mut s) = both_stores();
        s.clear_row(1);
        let opts = s.one_hop_options(0, 3, 11.0, 45.0);
        assert_eq!(opts, vec![(2, 290.0)]);
        // A stale relay row disqualifies too.
        s.update_row(2, &detour_rows()[2], -100.0);
        assert!(s.one_hop_options(0, 3, 11.0, 45.0).is_empty());
    }

    #[test]
    fn entitlement_tracks_peak() {
        let mut s = RowStore::with_entitlement(10, 4, 45.0);
        assert_eq!(s.entitlement(), Some(4));
        for i in 0..4 {
            s.update_row(i, &[LinkEntry::dead(); 10], 0.0);
        }
        assert_eq!(s.peak_rows(), 4);
    }

    #[test]
    fn capacity_pressure_evicts_stale_rows_first() {
        let mut s = RowStore::with_entitlement(10, 2, 45.0);
        s.update_row(0, &[LinkEntry::dead(); 10], 0.0);
        s.update_row(1, &[LinkEntry::dead(); 10], 50.0);
        // At t=100, row 0 (age 100) and row 1 (age 50) are both stale:
        // a new arrival at the boundary sheds them instead of tripping
        // the entitlement assertion.
        s.update_row(2, &[LinkEntry::dead(); 10], 100.0);
        assert_eq!(s.present_rows(), vec![2]);
        // A fresh row is never evicted by pressure.
        s.update_row(3, &[LinkEntry::dead(); 10], 101.0);
        assert_eq!(s.present_rows(), vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "entitlement")]
    #[cfg(debug_assertions)]
    fn fresh_overflow_is_debug_asserted() {
        // All rows fresh: eviction frees nothing, the guard must fire.
        let mut s = RowStore::with_entitlement(10, 2, 45.0);
        for i in 0..3 {
            s.update_row(i, &[LinkEntry::dead(); 10], 1.0);
        }
    }

    #[test]
    fn telemetry_counts_merges_and_evictions() {
        let telemetry = Telemetry::new(7);
        let mut s = RowStore::with_entitlement(10, 2, 45.0).with_telemetry(telemetry.clone());
        s.update_row(0, &[LinkEntry::dead(); 10], 0.0);
        s.update_row(1, &[LinkEntry::dead(); 10], 50.0);
        // Both prior rows are stale at t=100: the boundary insert
        // sheds them, and every arrival counted as a merge.
        s.update_row(2, &[LinkEntry::dead(); 10], 100.0);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter(7, "linkstate", "rows_merged"), Some(3));
        assert_eq!(snap.counter(7, "linkstate", "rows_evicted"), Some(2));
        assert_eq!(snap.gauge(7, "linkstate", "rows_held"), Some(1));
        assert!(telemetry
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::RowEvicted { origin: 0 })));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_row_bounds_checked() {
        RowStore::new(2).update_row(2, &live_row(&[0, 1]), 0.0);
    }

    #[test]
    #[should_panic(expected = "n entries")]
    fn update_row_length_checked() {
        RowStore::new(3).update_row(0, &live_row(&[0, 1]), 0.0);
    }
}
