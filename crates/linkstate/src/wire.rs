//! The compact binary wire format (section 5, "Table Exchange").
//!
//! The paper stresses that the original RON's verbose link-state encoding
//! made routing messages "about twice as large as necessary" (footnote 9)
//! and replaces it with a compact representation: 3 bytes per link-state
//! entry and 4 bytes per one-hop recommendation. The message sizes here
//! are chosen so that, with the default 30 s probe / 30 s (RON) or 15 s
//! (quorum) routing intervals, the theoretical bandwidth formulas of
//! section 6 come out with the paper's constants:
//!
//! * probe / probe-reply: **18 B** payload (+28 B IP/UDP) — probing traffic
//!   `49.1·n` bps;
//! * link-state message: **21 B** header + `3·n` B — RON routing traffic
//!   `1.6·n² + 24.5·n` bps;
//! * recommendation message: **23 B** header + `4·k` B for `k` entries —
//!   quorum routing traffic `6.4·n√n + 17.1·n + Θ(√n)` bps.
//!
//! Encoding is hand-rolled big-endian over [`bytes`]; no serde on the hot
//! path. Membership-service messages (join/leave/view) share the same
//! envelope but are rare, so their size is not calibrated.

use crate::entry::LinkEntry;
use apor_quorum::NodeId;
use apor_telemetry::trace::{TraceCtx, TRACE_CTX_SIZE};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Bytes of IP + UDP framing accounted per packet in bandwidth figures.
pub const UDP_IP_OVERHEAD: usize = 28;

/// Wire size of a probe or probe-reply payload.
pub const PROBE_WIRE_SIZE: usize = 18;
/// Wire size of the link-state message header (entries add `3·n`).
pub const LINKSTATE_HEADER_SIZE: usize = 21;
/// Wire size of the recommendation message header (entries add 4 or 6 each).
pub const REC_HEADER_SIZE: usize = 23;
/// Wire size of the probe-batch header (items add their own sizes).
pub const PROBE_BATCH_HEADER_SIZE: usize = 12;
/// Wire size of the sparse link-state header (entries add 5 each).
pub const SPARSE_LINKSTATE_HEADER_SIZE: usize = 23;

/// Message type tags.
const T_PROBE: u8 = 1;
const T_PROBE_REPLY: u8 = 2;
const T_LINKSTATE: u8 = 3;
const T_RECOMMENDATIONS: u8 = 4;
const T_JOIN: u8 = 5;
const T_LEAVE: u8 = 6;
const T_VIEW: u8 = 7;
const T_PROBE_BATCH: u8 = 8;
const T_LINKSTATE_SPARSE: u8 = 9;

/// Probe-batch item tags.
const TI_PING: u8 = 1;
const TI_PONG: u8 = 2;
const TI_GAUGE: u8 = 3;

/// Probe-batch flags-byte bit marking a trailing trace context
/// ([`TraceCtx`], [`TRACE_CTX_SIZE`] bytes after the item list).
/// Presence is signalled in the header, so every truncation of a
/// traced frame changes the expected total length and fails to decode;
/// frames without the bit are bit-identical to the legacy format.
pub const PROBE_FLAG_TRACE: u8 = 0x01;

/// Link-state flags bit (dense and sparse frames) marking a trailing
/// *route-discipline* section after the entry list: the origin's row
/// sequence number (`u16`) plus an explicit retraction list (`u16`
/// count, then that many strictly-ascending destination indices the
/// origin withdraws). Like [`PROBE_FLAG_TRACE`], presence is signalled
/// in the header, so truncating a versioned frame at any byte fails to
/// decode, and frames without the bit — seqno 0, no retractions — are
/// bit-identical to the legacy format (old captures need no flag day).
pub const LS_FLAG_SEQNO: u16 = 0x0001;

/// Fixed bytes of the seqno trailer before the retraction list
/// (`seqno: u16` + `count: u16`); each retraction adds 2 bytes.
pub const LS_SEQNO_TRAILER_BASE: usize = 4;

/// Bytes the route-discipline trailer adds to a link-state frame with
/// sequence number `seqno` and `retractions` withdrawn destinations:
/// zero for the legacy flagless form (seqno 0, nothing retracted).
#[must_use]
pub fn ls_trailer_size(seqno: u16, retractions: &[u16]) -> usize {
    if seqno == 0 && retractions.is_empty() {
        0
    } else {
        LS_SEQNO_TRAILER_BASE + 2 * retractions.len()
    }
}

/// Encode the route-discipline trailer (callers gate on
/// [`ls_trailer_size`] being nonzero).
fn put_ls_trailer(b: &mut BytesMut, seqno: u16, retractions: &[u16]) {
    b.put_u16(seqno);
    b.put_u16(retractions.len() as u16);
    for &dst in retractions {
        b.put_u16(dst);
    }
}

/// Decode the route-discipline trailer: consumes the rest of `b`, which
/// must contain exactly the trailer. Retractions must be strictly
/// ascending and `< width`; a canonical frame never carries an empty
/// trailer (that form encodes flagless).
fn get_ls_trailer(b: &mut &[u8], width: u16) -> Result<(u16, Vec<u16>), WireError> {
    if b.remaining() < LS_SEQNO_TRAILER_BASE {
        return Err(WireError::Truncated);
    }
    let seqno = b.get_u16();
    let count = b.get_u16() as usize;
    if b.remaining() != count * 2 {
        return Err(WireError::BadLength);
    }
    let mut retractions = Vec::with_capacity(count);
    let mut prev: Option<u16> = None;
    for _ in 0..count {
        let dst = b.get_u16();
        if dst >= width || prev.is_some_and(|p| dst <= p) {
            return Err(WireError::BadLength);
        }
        prev = Some(dst);
        retractions.push(dst);
    }
    if seqno == 0 && retractions.is_empty() {
        // Non-canonical: the legacy-identical form must be flagless.
        return Err(WireError::BadLength);
    }
    Ok((seqno, retractions))
}

/// Errors from [`Message::decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the message did.
    Truncated,
    /// Unknown message-type tag.
    BadType(u8),
    /// A length field disagrees with the buffer.
    BadLength,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated message"),
            WireError::BadType(t) => write!(f, "unknown message type {t}"),
            WireError::BadLength => write!(f, "inconsistent length field"),
        }
    }
}

impl std::error::Error for WireError {}

/// A probe (ping) message. 18 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeMsg {
    /// Sender.
    pub from: NodeId,
    /// Destination.
    pub to: NodeId,
    /// Sender's membership view version.
    pub view: u32,
    /// Probe sequence number (per sender–receiver pair).
    pub seq: u32,
    /// Sender clock at transmission, milliseconds (echoed by the reply).
    pub sent_ms: u32,
}

/// A probe reply. 18 bytes; echoes `seq` and `sent_ms`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeReplyMsg {
    /// Sender of the reply (the probed node).
    pub from: NodeId,
    /// The original prober.
    pub to: NodeId,
    /// Replier's membership view version.
    pub view: u32,
    /// Echoed probe sequence number.
    pub seq: u32,
    /// Echoed sender clock from the probe.
    pub echo_sent_ms: u32,
}

/// One item of a [`ProbeBatchMsg`]: everything one node owes one peer in
/// a probing round rides a single frame instead of one 46-byte packet
/// (18 B payload + 28 B framing) per ping, pong and gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeItem {
    /// An outgoing probe: 9 bytes on the wire.
    Ping {
        /// Probe sequence number (echoed by the matching pong).
        seq: u32,
        /// Sender clock at transmission, milliseconds.
        sent_ms: u32,
    },
    /// A probe reply: 9 bytes on the wire.
    Pong {
        /// Echoed probe sequence number.
        seq: u32,
        /// Echoed sender clock from the probe.
        echo_sent_ms: u32,
    },
    /// The sender's current measurement of the *reverse* path (its
    /// smoothed RTT and loss towards the addressee), piggybacked so the
    /// addressee can adopt the symmetric estimate without probing back
    /// at full rate. 5 bytes on the wire.
    Gauge {
        /// Sender's smoothed RTT to the addressee, ms.
        rtt_ms: u16,
        /// Sender's loss estimate towards the addressee, per-mille.
        loss_pm: u16,
    },
}

impl ProbeItem {
    /// Serialized size of this item, including its 1-byte tag.
    #[must_use]
    pub fn wire_size(self) -> usize {
        match self {
            ProbeItem::Ping { .. } | ProbeItem::Pong { .. } => 9,
            ProbeItem::Gauge { .. } => 5,
        }
    }
}

/// A batched probe frame: all outstanding probe work towards one peer
/// (pings, pongs and the reverse-path gauge) in one transmission.
/// `12 + Σ item` bytes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeBatchMsg {
    /// Sender.
    pub from: NodeId,
    /// Destination.
    pub to: NodeId,
    /// Sender's membership view version.
    pub view: u32,
    /// The batched items, in send order.
    pub items: Vec<ProbeItem>,
}

/// A round-one link-state message: the origin's full measured row.
/// `21 + 3·n` bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkStateMsg {
    /// Origin (the measuring node).
    pub from: NodeId,
    /// Addressed rendezvous server.
    pub to: NodeId,
    /// Origin's membership view version. Receivers drop rows from other
    /// views: grid indices are only meaningful within one view.
    pub view: u32,
    /// Routing round counter at the origin.
    pub round: u32,
    /// Origin clock (ms) when the row was snapshotted.
    pub basis_ms: u32,
    /// One entry per grid index (length = view size).
    pub entries: Vec<LinkEntry>,
    /// Origin's row sequence number ([`LS_FLAG_SEQNO`] trailer). Zero
    /// means unversioned (the legacy flagless form); a versioned origin
    /// bumps it on retraction events so stale row replays can never
    /// resurrect a withdrawn link.
    pub seqno: u16,
    /// Destinations the origin explicitly withdraws, strictly ascending
    /// and `< entries.len()`. Unlike mere entry death, a retraction is a
    /// deliberate signal receivers may propagate (feasibility reset).
    pub retractions: Vec<u16>,
}

/// A round-one link-state message carrying only the *live* entries of
/// the origin's row as `(dst, entry)` pairs: `23 + 5·k` bytes for `k`
/// live links. Under sub-quadratic probing a node measures only its
/// `O(√n)` entitled peers plus a constant sample, so `k ≪ n` and the
/// sparse form beats the dense `21 + 3·n` encoding whenever
/// `k < (3·n − 2) / 5`. Semantically identical to a dense row whose
/// unlisted entries are dead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseLinkStateMsg {
    /// Origin (the measuring node).
    pub from: NodeId,
    /// Addressed rendezvous server.
    pub to: NodeId,
    /// Origin's membership view version.
    pub view: u32,
    /// Routing round counter at the origin.
    pub round: u32,
    /// Origin clock (ms) when the row was snapshotted.
    pub basis_ms: u32,
    /// Row width (the view size `n`); every `dst` below is `< width`.
    pub width: u16,
    /// The live entries, ascending by destination index.
    pub entries: Vec<(u16, LinkEntry)>,
    /// Origin's row sequence number ([`LS_FLAG_SEQNO`] trailer); zero
    /// means unversioned (legacy flagless form).
    pub seqno: u16,
    /// Destinations the origin explicitly withdraws, strictly ascending
    /// and `< width`.
    pub retractions: Vec<u16>,
}

/// One best-hop recommendation: "to reach `dst`, forward via `hop`"
/// (`hop == dst` means the direct link is best). 4 bytes, or 6 with the
/// optional cost (the `WithCost` ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecEntry {
    /// Destination this recommendation is about.
    pub dst: NodeId,
    /// Best first hop towards `dst`.
    pub hop: NodeId,
    /// Path cost (ms) as computed by the rendezvous; only on the wire in
    /// [`RecFormat::WithCost`]. `u16::MAX` when absent.
    pub cost_ms: u16,
}

/// Wire format of recommendation entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RecFormat {
    /// The paper's 4-byte `(dst, hop)` entries.
    #[default]
    Compact,
    /// 6-byte `(dst, hop, cost)` entries — an ablation that spends
    /// bandwidth to let clients arbitrate recommendations by cost.
    WithCost,
}

impl RecFormat {
    /// Bytes per recommendation entry.
    #[must_use]
    pub fn entry_size(self) -> usize {
        match self {
            RecFormat::Compact => 4,
            RecFormat::WithCost => 6,
        }
    }
}

/// A round-two recommendation message from a rendezvous server to one of
/// its clients. `23 + entry_size·k` bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecommendationMsg {
    /// The rendezvous server.
    pub from: NodeId,
    /// The client these recommendations are for.
    pub to: NodeId,
    /// Server's membership view version.
    pub view: u32,
    /// Server's routing round counter.
    pub round: u32,
    /// Server clock (ms) when the recommendations were computed.
    pub basis_ms: u32,
    /// Entry encoding.
    pub format: RecFormat,
    /// Best-hop recommendations, one per destination the server covers.
    pub recs: Vec<RecEntry>,
}

/// Membership view broadcast by the coordinator: the sorted member list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViewMsg {
    /// The coordinator.
    pub from: NodeId,
    /// Addressee.
    pub to: NodeId,
    /// Monotonic view version.
    pub view: u32,
    /// Sorted member IDs; grid index = position in this list.
    pub members: Vec<NodeId>,
}

/// Any overlay message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Link probe.
    Probe(ProbeMsg),
    /// Probe reply.
    ProbeReply(ProbeReplyMsg),
    /// Batched probe frame (pings + pongs + reverse-path gauge in one).
    ProbeBatch(ProbeBatchMsg),
    /// Round-one link-state row.
    LinkState(LinkStateMsg),
    /// Round-one link-state row, live entries only.
    LinkStateSparse(SparseLinkStateMsg),
    /// Round-two recommendations.
    Recommendations(RecommendationMsg),
    /// Membership: join request to the coordinator.
    Join {
        /// Joining node.
        from: NodeId,
        /// Coordinator.
        to: NodeId,
    },
    /// Membership: leave notice to the coordinator.
    Leave {
        /// Leaving node.
        from: NodeId,
        /// Coordinator.
        to: NodeId,
    },
    /// Membership: view broadcast.
    View(ViewMsg),
}

impl Message {
    /// The sender.
    #[must_use]
    pub fn from(&self) -> NodeId {
        match self {
            Message::Probe(m) => m.from,
            Message::ProbeReply(m) => m.from,
            Message::ProbeBatch(m) => m.from,
            Message::LinkState(m) => m.from,
            Message::LinkStateSparse(m) => m.from,
            Message::Recommendations(m) => m.from,
            Message::Join { from, .. } | Message::Leave { from, .. } => *from,
            Message::View(m) => m.from,
        }
    }

    /// The addressee.
    #[must_use]
    pub fn to(&self) -> NodeId {
        match self {
            Message::Probe(m) => m.to,
            Message::ProbeReply(m) => m.to,
            Message::ProbeBatch(m) => m.to,
            Message::LinkState(m) => m.to,
            Message::LinkStateSparse(m) => m.to,
            Message::Recommendations(m) => m.to,
            Message::Join { to, .. } | Message::Leave { to, .. } => *to,
            Message::View(m) => m.to,
        }
    }

    /// Serialize to bytes.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(self.wire_size());
        match self {
            Message::Probe(m) => {
                b.put_u8(T_PROBE);
                b.put_u16(m.from.0);
                b.put_u16(m.to.0);
                b.put_u32(m.view);
                b.put_u32(m.seq);
                b.put_u32(m.sent_ms);
                b.put_u8(0); // flags
            }
            Message::ProbeReply(m) => {
                b.put_u8(T_PROBE_REPLY);
                b.put_u16(m.from.0);
                b.put_u16(m.to.0);
                b.put_u32(m.view);
                b.put_u32(m.seq);
                b.put_u32(m.echo_sent_ms);
                b.put_u8(0); // flags
            }
            Message::ProbeBatch(m) => {
                b.put_u8(T_PROBE_BATCH);
                b.put_u16(m.from.0);
                b.put_u16(m.to.0);
                b.put_u32(m.view);
                b.put_u16(m.items.len() as u16);
                b.put_u8(0); // flags
                for item in &m.items {
                    match *item {
                        ProbeItem::Ping { seq, sent_ms } => {
                            b.put_u8(TI_PING);
                            b.put_u32(seq);
                            b.put_u32(sent_ms);
                        }
                        ProbeItem::Pong { seq, echo_sent_ms } => {
                            b.put_u8(TI_PONG);
                            b.put_u32(seq);
                            b.put_u32(echo_sent_ms);
                        }
                        ProbeItem::Gauge { rtt_ms, loss_pm } => {
                            b.put_u8(TI_GAUGE);
                            b.put_u16(rtt_ms);
                            b.put_u16(loss_pm);
                        }
                    }
                }
            }
            Message::LinkStateSparse(m) => {
                b.put_u8(T_LINKSTATE_SPARSE);
                b.put_u16(m.from.0);
                b.put_u16(m.to.0);
                b.put_u32(m.view);
                b.put_u32(m.round);
                b.put_u16(m.entries.len() as u16);
                b.put_u32(m.basis_ms);
                b.put_u16(m.width);
                let versioned = ls_trailer_size(m.seqno, &m.retractions) != 0;
                b.put_u16(if versioned { LS_FLAG_SEQNO } else { 0 });
                for &(dst, e) in &m.entries {
                    b.put_u16(dst);
                    b.put_slice(&e.encode());
                }
                if versioned {
                    put_ls_trailer(&mut b, m.seqno, &m.retractions);
                }
            }
            Message::LinkState(m) => {
                b.put_u8(T_LINKSTATE);
                b.put_u16(m.from.0);
                b.put_u16(m.to.0);
                b.put_u32(m.view);
                b.put_u32(m.round);
                b.put_u16(m.entries.len() as u16);
                b.put_u32(m.basis_ms);
                let versioned = ls_trailer_size(m.seqno, &m.retractions) != 0;
                b.put_u16(if versioned { LS_FLAG_SEQNO } else { 0 });
                for e in &m.entries {
                    b.put_slice(&e.encode());
                }
                if versioned {
                    put_ls_trailer(&mut b, m.seqno, &m.retractions);
                }
            }
            Message::Recommendations(m) => {
                b.put_u8(T_RECOMMENDATIONS);
                b.put_u16(m.from.0);
                b.put_u16(m.to.0);
                b.put_u32(m.view);
                b.put_u32(m.round);
                b.put_u16(m.recs.len() as u16);
                b.put_u32(m.basis_ms);
                let flags: u32 = match m.format {
                    RecFormat::Compact => 0,
                    RecFormat::WithCost => 1,
                };
                b.put_u32(flags);
                for r in &m.recs {
                    b.put_u16(r.dst.0);
                    b.put_u16(r.hop.0);
                    if m.format == RecFormat::WithCost {
                        b.put_u16(r.cost_ms);
                    }
                }
            }
            Message::Join { from, to } => {
                b.put_u8(T_JOIN);
                b.put_u16(from.0);
                b.put_u16(to.0);
            }
            Message::Leave { from, to } => {
                b.put_u8(T_LEAVE);
                b.put_u16(from.0);
                b.put_u16(to.0);
            }
            Message::View(m) => {
                b.put_u8(T_VIEW);
                b.put_u16(m.from.0);
                b.put_u16(m.to.0);
                b.put_u32(m.view);
                b.put_u16(m.members.len() as u16);
                for id in &m.members {
                    b.put_u16(id.0);
                }
            }
        }
        b.freeze()
    }

    /// Serialize, appending `ctx` as a trace trailer when present.
    ///
    /// Only [`Message::ProbeBatch`] carries a trace context (the only
    /// routing-plane frame sent during convergence episodes); for every
    /// other variant — and for `None` — the output is byte-for-byte
    /// [`Message::encode`].
    #[must_use]
    pub fn encode_traced(&self, ctx: Option<&TraceCtx>) -> Bytes {
        match (self, ctx) {
            (Message::ProbeBatch(_), Some(ctx)) => {
                let mut raw = self.encode().to_vec();
                // The flags byte is the last header byte (offset 11).
                raw[PROBE_BATCH_HEADER_SIZE - 1] |= PROBE_FLAG_TRACE;
                raw.extend_from_slice(&ctx.encode());
                Bytes::from(raw)
            }
            _ => self.encode(),
        }
    }

    /// Deserialize from bytes.
    ///
    /// # Errors
    /// Returns a [`WireError`] on truncation, bad type tags or length
    /// mismatches. Never panics on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Message, WireError> {
        Self::decode_traced(bytes).map(|(msg, _)| msg)
    }

    /// Deserialize from bytes, returning the trace context when the
    /// frame carries one ([`PROBE_FLAG_TRACE`] set on a probe batch's
    /// flags byte).
    ///
    /// # Errors
    /// Returns a [`WireError`] on truncation, bad type tags, a
    /// malformed trailer or length mismatches. Never panics on
    /// malformed input.
    pub fn decode_traced(bytes: &[u8]) -> Result<(Message, Option<TraceCtx>), WireError> {
        let mut ctx = None;
        let mut b = bytes;
        if b.remaining() < 5 {
            return Err(WireError::Truncated);
        }
        let typ = b.get_u8();
        let from = NodeId(b.get_u16());
        let to = NodeId(b.get_u16());
        let msg = match typ {
            T_PROBE | T_PROBE_REPLY => {
                if b.remaining() < PROBE_WIRE_SIZE - 5 {
                    return Err(WireError::Truncated);
                }
                let view = b.get_u32();
                let seq = b.get_u32();
                let ts = b.get_u32();
                let _flags = b.get_u8();
                Ok(if typ == T_PROBE {
                    Message::Probe(ProbeMsg {
                        from,
                        to,
                        view,
                        seq,
                        sent_ms: ts,
                    })
                } else {
                    Message::ProbeReply(ProbeReplyMsg {
                        from,
                        to,
                        view,
                        seq,
                        echo_sent_ms: ts,
                    })
                })
            }
            T_PROBE_BATCH => {
                if b.remaining() < PROBE_BATCH_HEADER_SIZE - 5 {
                    return Err(WireError::Truncated);
                }
                let view = b.get_u32();
                let count = b.get_u16() as usize;
                let flags = b.get_u8();
                let mut items = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    if b.remaining() < 1 {
                        return Err(WireError::Truncated);
                    }
                    let tag = b.get_u8();
                    let need = match tag {
                        TI_PING | TI_PONG => 8,
                        TI_GAUGE => 4,
                        other => return Err(WireError::BadType(other)),
                    };
                    if b.remaining() < need {
                        return Err(WireError::Truncated);
                    }
                    items.push(match tag {
                        TI_PING => ProbeItem::Ping {
                            seq: b.get_u32(),
                            sent_ms: b.get_u32(),
                        },
                        TI_PONG => ProbeItem::Pong {
                            seq: b.get_u32(),
                            echo_sent_ms: b.get_u32(),
                        },
                        _ => ProbeItem::Gauge {
                            rtt_ms: b.get_u16(),
                            loss_pm: b.get_u16(),
                        },
                    });
                }
                if flags & PROBE_FLAG_TRACE != 0 {
                    // Header-signalled trailer: exactly TRACE_CTX_SIZE
                    // bytes must remain after the item list.
                    if b.remaining() < TRACE_CTX_SIZE {
                        return Err(WireError::Truncated);
                    }
                    ctx = Some(TraceCtx::decode(b).ok_or(WireError::BadLength)?);
                } else if b.remaining() > 0 {
                    return Err(WireError::BadLength);
                }
                Ok(Message::ProbeBatch(ProbeBatchMsg {
                    from,
                    to,
                    view,
                    items,
                }))
            }
            T_LINKSTATE_SPARSE => {
                if b.remaining() < SPARSE_LINKSTATE_HEADER_SIZE - 5 {
                    return Err(WireError::Truncated);
                }
                let view = b.get_u32();
                let round = b.get_u32();
                let count = b.get_u16() as usize;
                let basis_ms = b.get_u32();
                let width = b.get_u16();
                let flags = b.get_u16();
                let versioned = flags & LS_FLAG_SEQNO != 0;
                let body = count * (2 + LinkEntry::WIRE_SIZE);
                if versioned {
                    if b.remaining() < body {
                        return Err(WireError::Truncated);
                    }
                } else if b.remaining() != body {
                    return Err(WireError::BadLength);
                }
                let mut entries = Vec::with_capacity(count);
                let mut prev: Option<u16> = None;
                for _ in 0..count {
                    let dst = b.get_u16();
                    // Entries must be strictly ascending and in range —
                    // the sparse-row merge kernel relies on it.
                    if dst >= width || prev.is_some_and(|p| dst <= p) {
                        return Err(WireError::BadLength);
                    }
                    prev = Some(dst);
                    let raw = [b.get_u8(), b.get_u8(), b.get_u8()];
                    entries.push((dst, LinkEntry::decode(raw)));
                }
                let (seqno, retractions) = if versioned {
                    get_ls_trailer(&mut b, width)?
                } else {
                    (0, Vec::new())
                };
                Ok(Message::LinkStateSparse(SparseLinkStateMsg {
                    from,
                    to,
                    view,
                    round,
                    basis_ms,
                    width,
                    entries,
                    seqno,
                    retractions,
                }))
            }
            T_LINKSTATE => {
                if b.remaining() < LINKSTATE_HEADER_SIZE - 5 {
                    return Err(WireError::Truncated);
                }
                let view = b.get_u32();
                let round = b.get_u32();
                let count = b.get_u16() as usize;
                let basis_ms = b.get_u32();
                let flags = b.get_u16();
                let versioned = flags & LS_FLAG_SEQNO != 0;
                let body = count * LinkEntry::WIRE_SIZE;
                if versioned {
                    if b.remaining() < body {
                        return Err(WireError::Truncated);
                    }
                } else if b.remaining() != body {
                    return Err(WireError::BadLength);
                }
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let raw = [b.get_u8(), b.get_u8(), b.get_u8()];
                    entries.push(LinkEntry::decode(raw));
                }
                let (seqno, retractions) = if versioned {
                    get_ls_trailer(&mut b, count as u16)?
                } else {
                    (0, Vec::new())
                };
                Ok(Message::LinkState(LinkStateMsg {
                    from,
                    to,
                    view,
                    round,
                    basis_ms,
                    entries,
                    seqno,
                    retractions,
                }))
            }
            T_RECOMMENDATIONS => {
                if b.remaining() < REC_HEADER_SIZE - 5 {
                    return Err(WireError::Truncated);
                }
                let view = b.get_u32();
                let round = b.get_u32();
                let count = b.get_u16() as usize;
                let basis_ms = b.get_u32();
                let flags = b.get_u32();
                let format = if flags & 1 == 1 {
                    RecFormat::WithCost
                } else {
                    RecFormat::Compact
                };
                if b.remaining() != count * format.entry_size() {
                    return Err(WireError::BadLength);
                }
                let mut recs = Vec::with_capacity(count);
                for _ in 0..count {
                    let dst = NodeId(b.get_u16());
                    let hop = NodeId(b.get_u16());
                    let cost_ms = if format == RecFormat::WithCost {
                        b.get_u16()
                    } else {
                        u16::MAX
                    };
                    recs.push(RecEntry { dst, hop, cost_ms });
                }
                Ok(Message::Recommendations(RecommendationMsg {
                    from,
                    to,
                    view,
                    round,
                    basis_ms,
                    format,
                    recs,
                }))
            }
            T_JOIN => Ok(Message::Join { from, to }),
            T_LEAVE => Ok(Message::Leave { from, to }),
            T_VIEW => {
                if b.remaining() < 6 {
                    return Err(WireError::Truncated);
                }
                let view = b.get_u32();
                let count = b.get_u16() as usize;
                if b.remaining() != count * 2 {
                    return Err(WireError::BadLength);
                }
                let mut members = Vec::with_capacity(count);
                for _ in 0..count {
                    members.push(NodeId(b.get_u16()));
                }
                Ok(Message::View(ViewMsg {
                    from,
                    to,
                    view,
                    members,
                }))
            }
            other => Err(WireError::BadType(other)),
        }?;
        Ok((msg, ctx))
    }

    /// Serialized size in bytes (application payload, no IP/UDP framing).
    #[must_use]
    pub fn wire_size(&self) -> usize {
        match self {
            Message::Probe(_) | Message::ProbeReply(_) => PROBE_WIRE_SIZE,
            Message::ProbeBatch(m) => {
                PROBE_BATCH_HEADER_SIZE + m.items.iter().map(|i| i.wire_size()).sum::<usize>()
            }
            Message::LinkState(m) => {
                LINKSTATE_HEADER_SIZE
                    + m.entries.len() * LinkEntry::WIRE_SIZE
                    + ls_trailer_size(m.seqno, &m.retractions)
            }
            Message::LinkStateSparse(m) => {
                SPARSE_LINKSTATE_HEADER_SIZE
                    + m.entries.len() * (2 + LinkEntry::WIRE_SIZE)
                    + ls_trailer_size(m.seqno, &m.retractions)
            }
            Message::Recommendations(m) => REC_HEADER_SIZE + m.recs.len() * m.format.entry_size(),
            Message::Join { .. } | Message::Leave { .. } => 5,
            Message::View(m) => 11 + 2 * m.members.len(),
        }
    }

    /// Size including IP+UDP framing, as accounted in bandwidth figures.
    #[must_use]
    pub fn wire_size_with_overhead(&self) -> usize {
        self.wire_size() + UDP_IP_OVERHEAD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: &Message) -> Message {
        let bytes = m.encode();
        assert_eq!(bytes.len(), m.wire_size(), "declared size must match");
        Message::decode(&bytes).expect("decode")
    }

    #[test]
    fn probe_roundtrip_and_size() {
        let m = Message::Probe(ProbeMsg {
            from: NodeId(3),
            to: NodeId(9),
            view: 7,
            seq: 123456,
            sent_ms: 42_000,
        });
        assert_eq!(m.wire_size(), 18);
        assert_eq!(m.wire_size_with_overhead(), 46);
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn probe_reply_roundtrip() {
        let m = Message::ProbeReply(ProbeReplyMsg {
            from: NodeId(9),
            to: NodeId(3),
            view: 7,
            seq: 123456,
            echo_sent_ms: 42_000,
        });
        assert_eq!(m.wire_size(), 18);
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn linkstate_roundtrip_and_size() {
        let n = 140;
        let entries: Vec<LinkEntry> = (0..n)
            .map(|i| {
                if i % 7 == 0 {
                    LinkEntry::dead()
                } else {
                    LinkEntry::live(i as u16 * 3, 0.01)
                }
            })
            .collect();
        let m = Message::LinkState(LinkStateMsg {
            from: NodeId(5),
            to: NodeId(17),
            view: 2,
            round: 99,
            basis_ms: 1_000_000,
            entries,
            seqno: 0,
            retractions: vec![],
        });
        // 21 + 3·140 = 441 bytes: the paper's "at most 3·n bytes" payload.
        assert_eq!(m.wire_size(), 21 + 3 * n);
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn recommendations_compact_roundtrip() {
        let recs: Vec<RecEntry> = (0..24)
            .map(|i| RecEntry {
                dst: NodeId(i),
                hop: NodeId((i * 3) % 140),
                cost_ms: u16::MAX, // absent in compact form
            })
            .collect();
        let m = Message::Recommendations(RecommendationMsg {
            from: NodeId(1),
            to: NodeId(2),
            view: 4,
            round: 11,
            basis_ms: 500,
            format: RecFormat::Compact,
            recs,
        });
        // 23 + 4·24: the paper's 4·(2√n) byte recommendation body for n=144.
        assert_eq!(m.wire_size(), 23 + 4 * 24);
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn recommendations_with_cost_roundtrip() {
        let recs = vec![
            RecEntry {
                dst: NodeId(7),
                hop: NodeId(7),
                cost_ms: 250,
            },
            RecEntry {
                dst: NodeId(8),
                hop: NodeId(3),
                cost_ms: 90,
            },
        ];
        let m = Message::Recommendations(RecommendationMsg {
            from: NodeId(1),
            to: NodeId(2),
            view: 4,
            round: 11,
            basis_ms: 500,
            format: RecFormat::WithCost,
            recs,
        });
        assert_eq!(m.wire_size(), 23 + 6 * 2);
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn membership_messages_roundtrip() {
        let join = Message::Join {
            from: NodeId(30),
            to: NodeId(0),
        };
        assert_eq!(roundtrip(&join), join);
        let leave = Message::Leave {
            from: NodeId(30),
            to: NodeId(0),
        };
        assert_eq!(roundtrip(&leave), leave);
        let view = Message::View(ViewMsg {
            from: NodeId(0),
            to: NodeId(30),
            view: 12,
            members: vec![NodeId(0), NodeId(5), NodeId(30)],
        });
        assert_eq!(roundtrip(&view), view);
    }

    #[test]
    fn probe_batch_roundtrip_and_size() {
        let m = Message::ProbeBatch(ProbeBatchMsg {
            from: NodeId(3),
            to: NodeId(9),
            view: 7,
            items: vec![
                ProbeItem::Ping {
                    seq: 42,
                    sent_ms: 1_000,
                },
                ProbeItem::Pong {
                    seq: 41,
                    echo_sent_ms: 970,
                },
                ProbeItem::Gauge {
                    rtt_ms: 55,
                    loss_pm: 12,
                },
            ],
        });
        // 12-byte header + 9 + 9 + 5: one frame where three separate
        // probe packets would cost 3 × (18 + 28) bytes with framing.
        assert_eq!(m.wire_size(), 12 + 9 + 9 + 5);
        assert!(m.wire_size_with_overhead() < 3 * (PROBE_WIRE_SIZE + UDP_IP_OVERHEAD));
        assert_eq!(roundtrip(&m), m);
        // An empty batch is legal (a bare keepalive) and tiny.
        let empty = Message::ProbeBatch(ProbeBatchMsg {
            from: NodeId(1),
            to: NodeId(2),
            view: 0,
            items: vec![],
        });
        assert_eq!(empty.wire_size(), PROBE_BATCH_HEADER_SIZE);
        assert_eq!(roundtrip(&empty), empty);
    }

    #[test]
    fn probe_batch_rejects_bad_item_tag_and_trailing_junk() {
        let m = Message::ProbeBatch(ProbeBatchMsg {
            from: NodeId(1),
            to: NodeId(2),
            view: 0,
            items: vec![ProbeItem::Gauge {
                rtt_ms: 1,
                loss_pm: 0,
            }],
        });
        let mut bytes = m.encode().to_vec();
        bytes.extend_from_slice(&[0]);
        assert_eq!(Message::decode(&bytes), Err(WireError::BadLength));
        let mut bad_tag = m.encode().to_vec();
        bad_tag[PROBE_BATCH_HEADER_SIZE] = 200; // the item tag byte
        assert_eq!(Message::decode(&bad_tag), Err(WireError::BadType(200)));
    }

    #[test]
    fn traced_probe_batch_roundtrips_and_rejects_truncation() {
        let m = Message::ProbeBatch(ProbeBatchMsg {
            from: NodeId(3),
            to: NodeId(9),
            view: 7,
            items: vec![
                ProbeItem::Ping {
                    seq: 42,
                    sent_ms: 1_000,
                },
                ProbeItem::Gauge {
                    rtt_ms: 55,
                    loss_pm: 12,
                },
            ],
        });
        let ctx = TraceCtx {
            episode: 0x0009_0001,
            origin: 9,
            hop: 1,
        };
        let traced = m.encode_traced(Some(&ctx));
        assert_eq!(traced.len(), m.wire_size() + TRACE_CTX_SIZE);
        assert_eq!(
            traced[PROBE_BATCH_HEADER_SIZE - 1] & PROBE_FLAG_TRACE,
            PROBE_FLAG_TRACE
        );
        let (decoded, got) = Message::decode_traced(&traced).expect("decode traced batch");
        assert_eq!(decoded, m);
        assert_eq!(got, Some(ctx));
        // The ctx-oblivious decoder still reads the message.
        assert_eq!(Message::decode(&traced).unwrap(), m);
        // Every proper prefix is rejected; so is trailing garbage.
        for cut in 0..traced.len() {
            assert!(
                Message::decode_traced(&traced[..cut]).is_err(),
                "decode of {cut}-byte traced prefix should fail"
            );
        }
        let mut long = traced.to_vec();
        long.push(0);
        assert!(Message::decode_traced(&long).is_err());
    }

    #[test]
    fn untraced_probe_batch_is_bit_identical() {
        let m = Message::ProbeBatch(ProbeBatchMsg {
            from: NodeId(1),
            to: NodeId(2),
            view: 3,
            items: vec![ProbeItem::Pong {
                seq: 4,
                echo_sent_ms: 5,
            }],
        });
        assert_eq!(m.encode_traced(None).as_ref(), m.encode().as_ref());
        let (decoded, ctx) = Message::decode_traced(&m.encode()).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(ctx, None);
        // Non-batch frames never carry a trailer even when asked.
        let probe = Message::Probe(ProbeMsg {
            from: NodeId(1),
            to: NodeId(2),
            view: 0,
            seq: 1,
            sent_ms: 2,
        });
        let ctx = TraceCtx {
            episode: 1,
            origin: 1,
            hop: 0,
        };
        assert_eq!(
            probe.encode_traced(Some(&ctx)).as_ref(),
            probe.encode().as_ref()
        );
    }

    #[test]
    fn sparse_linkstate_roundtrip_and_size() {
        let m = Message::LinkStateSparse(SparseLinkStateMsg {
            from: NodeId(5),
            to: NodeId(17),
            view: 2,
            round: 99,
            basis_ms: 1_000_000,
            width: 4096,
            entries: vec![
                (3, LinkEntry::live(40, 0.01)),
                (64, LinkEntry::live(120, 0.0)),
                (4095, LinkEntry::live(7, 0.0)),
            ],
            seqno: 0,
            retractions: vec![],
        });
        // 23 + 5·k: at n = 4096 a 130-live-entry row costs 673 B sparse
        // vs 12 309 B dense.
        assert_eq!(m.wire_size(), 23 + 5 * 3);
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn sparse_linkstate_rejects_disorder_and_out_of_range() {
        let mk = |entries: Vec<(u16, LinkEntry)>| {
            Message::LinkStateSparse(SparseLinkStateMsg {
                from: NodeId(0),
                to: NodeId(1),
                view: 0,
                round: 0,
                basis_ms: 0,
                width: 100,
                entries,
                seqno: 0,
                retractions: vec![],
            })
            .encode()
        };
        // Descending destinations.
        let bad = mk(vec![
            (9, LinkEntry::live(1, 0.0)),
            (3, LinkEntry::live(2, 0.0)),
        ]);
        assert_eq!(Message::decode(&bad), Err(WireError::BadLength));
        // Duplicate destination.
        let dup = mk(vec![
            (9, LinkEntry::live(1, 0.0)),
            (9, LinkEntry::live(2, 0.0)),
        ]);
        assert_eq!(Message::decode(&dup), Err(WireError::BadLength));
        // Destination ≥ width.
        let oob = mk(vec![(100, LinkEntry::live(1, 0.0))]);
        assert_eq!(Message::decode(&oob), Err(WireError::BadLength));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Message::decode(&[]), Err(WireError::Truncated));
        assert_eq!(Message::decode(&[1, 2]), Err(WireError::Truncated));
        assert_eq!(
            Message::decode(&[200, 0, 0, 0, 0]),
            Err(WireError::BadType(200))
        );
    }

    #[test]
    fn decode_rejects_truncated_bodies() {
        let m = Message::LinkState(LinkStateMsg {
            from: NodeId(1),
            to: NodeId(2),
            view: 0,
            round: 0,
            basis_ms: 0,
            entries: vec![LinkEntry::live(5, 0.0); 10],
            seqno: 0,
            retractions: vec![],
        });
        let bytes = m.encode();
        for cut in 1..bytes.len() {
            let r = Message::decode(&bytes[..cut]);
            assert!(r.is_err(), "decode of {cut}-byte prefix should fail");
        }
    }

    #[test]
    fn decode_rejects_length_mismatch() {
        let m = Message::Recommendations(RecommendationMsg {
            from: NodeId(1),
            to: NodeId(2),
            view: 0,
            round: 0,
            basis_ms: 0,
            format: RecFormat::Compact,
            recs: vec![RecEntry {
                dst: NodeId(3),
                hop: NodeId(4),
                cost_ms: u16::MAX,
            }],
        });
        let mut bytes = m.encode().to_vec();
        bytes.extend_from_slice(&[0, 0]); // trailing junk
        assert_eq!(Message::decode(&bytes), Err(WireError::BadLength));
    }

    #[test]
    fn versioned_linkstate_roundtrips_and_rejects_truncation() {
        let m = Message::LinkState(LinkStateMsg {
            from: NodeId(5),
            to: NodeId(17),
            view: 2,
            round: 99,
            basis_ms: 1_000_000,
            entries: vec![LinkEntry::live(40, 0.0); 12],
            seqno: 7,
            retractions: vec![2, 5, 11],
        });
        // Legacy body plus the 4-byte trailer base and 2 bytes/retraction.
        assert_eq!(m.wire_size(), 21 + 3 * 12 + 4 + 2 * 3);
        assert_eq!(roundtrip(&m), m);
        let bytes = m.encode();
        assert_eq!(
            u16::from_be_bytes([bytes[19], bytes[20]]) & LS_FLAG_SEQNO,
            LS_FLAG_SEQNO
        );
        for cut in 1..bytes.len() {
            assert!(
                Message::decode(&bytes[..cut]).is_err(),
                "decode of {cut}-byte versioned prefix should fail"
            );
        }
        let mut long = bytes.to_vec();
        long.push(0);
        assert!(Message::decode(&long).is_err());
    }

    #[test]
    fn versioned_sparse_linkstate_roundtrips_and_validates_retractions() {
        let mk = |seqno: u16, retractions: Vec<u16>| {
            Message::LinkStateSparse(SparseLinkStateMsg {
                from: NodeId(0),
                to: NodeId(1),
                view: 0,
                round: 3,
                basis_ms: 0,
                width: 100,
                entries: vec![(4, LinkEntry::live(9, 0.0)), (40, LinkEntry::live(2, 0.0))],
                seqno,
                retractions,
            })
        };
        let m = mk(1, vec![7, 90]);
        assert_eq!(m.wire_size(), 23 + 5 * 2 + 4 + 2 * 2);
        assert_eq!(roundtrip(&m), m);
        // A seqno with no retractions is still a valid trailer.
        let bumped = mk(9, vec![]);
        assert_eq!(bumped.wire_size(), 23 + 5 * 2 + 4);
        assert_eq!(roundtrip(&bumped), bumped);
        // Retractions must be ascending, unique, and < width.
        for bad in [vec![90u16, 7], vec![7, 7], vec![100]] {
            assert_eq!(
                Message::decode(&mk(1, bad).encode()),
                Err(WireError::BadLength)
            );
        }
        for cut in 1..m.encode().len() {
            assert!(Message::decode(&m.encode()[..cut]).is_err());
        }
    }

    #[test]
    fn unversioned_linkstate_is_bit_identical_to_legacy() {
        // seqno 0 + no retractions must encode the pre-seqno format
        // byte for byte: flags word zero, no trailer, old sizes.
        let m = Message::LinkState(LinkStateMsg {
            from: NodeId(1),
            to: NodeId(2),
            view: 4,
            round: 9,
            basis_ms: 77,
            entries: vec![LinkEntry::live(10, 0.0), LinkEntry::dead()],
            seqno: 0,
            retractions: vec![],
        });
        assert_eq!(m.wire_size(), LINKSTATE_HEADER_SIZE + 2 * 3);
        let bytes = m.encode();
        assert_eq!(u16::from_be_bytes([bytes[19], bytes[20]]), 0);
        // A flagged frame with an empty trailer is non-canonical: the
        // same logical row must have exactly one encoding.
        let mut forged = bytes.to_vec();
        forged[20] |= LS_FLAG_SEQNO as u8;
        forged.extend_from_slice(&[0, 0, 0, 0]); // seqno 0, count 0
        assert_eq!(Message::decode(&forged), Err(WireError::BadLength));
    }

    /// The bandwidth-formula calibration (section 6): with the default
    /// intervals the per-node traffic derived from these wire sizes must
    /// match the paper's published constants.
    #[test]
    fn section_6_bandwidth_constants() {
        let n: f64 = 140.0;
        let probe_pkt = (PROBE_WIRE_SIZE + UDP_IP_OVERHEAD) as f64;
        // Probing: each node sends and receives probes and replies to/from
        // n−1 peers every 30 s: 4·(n−1) packets per 30 s.
        let probing_bps = 4.0 * (n - 1.0) * probe_pkt * 8.0 / 30.0;
        let paper_probing = 49.1 * n;
        assert!(
            (probing_bps - paper_probing).abs() / paper_probing < 0.03,
            "probing {probing_bps} vs paper {paper_probing}"
        );

        // RON routing: LS to n−1 peers every 30 s, in + out.
        let ls_pkt = (LINKSTATE_HEADER_SIZE + 3 * n as usize + UDP_IP_OVERHEAD) as f64;
        let ron_bps = 2.0 * (n - 1.0) * ls_pkt * 8.0 / 30.0;
        let paper_ron = 1.6 * n * n + 24.5 * n;
        assert!(
            (ron_bps - paper_ron).abs() / paper_ron < 0.03,
            "RON routing {ron_bps} vs paper {paper_ron}"
        );

        // Quorum routing: LS to ~2√n servers + recs (2√n entries) to ~2√n
        // clients every 15 s, in + out.
        let sq = n.sqrt();
        let rec_pkt = (REC_HEADER_SIZE + UDP_IP_OVERHEAD) as f64 + 4.0 * 2.0 * sq;
        let quorum_bps = (2.0 * 2.0 * sq * ls_pkt + 2.0 * 2.0 * sq * rec_pkt) * 8.0 / 15.0;
        let paper_quorum = 6.4 * n * sq + 17.1 * n + 196.3 * sq;
        assert!(
            (quorum_bps - paper_quorum).abs() / paper_quorum < 0.06,
            "quorum routing {quorum_bps} vs paper {paper_quorum}"
        );
    }
}
