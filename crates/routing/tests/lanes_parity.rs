//! Parity properties for the struct-of-arrays (lanes) row layout.
//!
//! The lanes kernel must be observationally invisible to routing: same
//! hop chosen (including lowest-index tie-breaks), same cost to the
//! bit, across all three row representations (dense `LinkStateTable`,
//! lane-backed `RowStore`, and a borrowed `RowRef::Sparse` view), and
//! the lanes themselves must hold the exact wire bytes so a row that
//! travelled through `wire.rs` encode/decode is bit-identical to one
//! stored directly.

use apor_linkstate::wire::{LinkStateMsg, SparseLinkStateMsg};
use apor_linkstate::{
    best_one_hop_rows, LaneRow, LinkEntry, LinkStateStore, LinkStateTable, Message, RowRef,
    RowStore,
};
use apor_quorum::NodeId;
use proptest::prelude::*;

/// A random row of `n` entries: latency over the full wire range, an
/// alive flag, and an arbitrary (off-grid) loss rate.
fn arb_row(n: usize) -> impl Strategy<Value = Vec<LinkEntry>> {
    prop::collection::vec((any::<u16>(), prop::bool::weighted(0.7), 0.0f64..1.0), n).prop_map(
        |raw| {
            raw.into_iter()
                .map(|(lat, alive, loss)| {
                    if alive {
                        LinkEntry::live(lat, loss as f32)
                    } else {
                        LinkEntry::dead()
                    }
                })
                .collect()
        },
    )
}

/// Random `(origin, row)` specs at width `n` with variable live
/// density per row — including all-dead and ~single-entry rows, the
/// batch kernel's edge cases. Density tier 0 yields an empty row, tier
/// 1 about one live entry, tiers 2–3 half/nearly full rows.
fn arb_sparse_rows(n: usize) -> impl Strategy<Value = Vec<(usize, Vec<LinkEntry>)>> {
    prop::collection::vec(
        (
            0..n,
            0usize..4,
            prop::collection::vec((1u16..2000, 0u8..100), n),
        ),
        1..8,
    )
    .prop_map(move |specs| {
        specs
            .into_iter()
            .map(|(o, tier, raw)| {
                let threshold = match tier {
                    0 => 0,
                    1 => 100 / n as u8,
                    2 => 50,
                    _ => 90,
                };
                let row: Vec<LinkEntry> = raw
                    .into_iter()
                    .enumerate()
                    .map(|(j, (lat, roll))| {
                        if j == o {
                            LinkEntry::live(0, 0.0)
                        } else if roll < threshold {
                            LinkEntry::live(lat, 0.0)
                        } else {
                            LinkEntry::dead()
                        }
                    })
                    .collect();
                (o, row)
            })
            .collect()
    })
}

/// Live `(dst, entry)` pairs of a dense row, ascending — the
/// `RowRef::Sparse` borrowed form.
fn live_pairs(row: &[LinkEntry]) -> Vec<(u16, LinkEntry)> {
    row.iter()
        .enumerate()
        .filter(|(_, e)| e.alive)
        .map(|(d, e)| (d as u16, *e))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Three-way kernel parity at n = 100: the dense table, the
    /// lane-backed sparse store, and raw `RowRef::Sparse` views all
    /// pick the identical hop at the identical cost — exact equality,
    /// not epsilon, since costs are integer milliseconds in every
    /// representation.
    #[test]
    fn three_way_kernel_parity_n100(
        rows in prop::collection::vec(arb_row(100), 4..7),
        pairs in prop::collection::vec((0usize..4, 0usize..100), 8..9),
    ) {
        let n = 100;
        let mut dense = LinkStateTable::new(n);
        let mut lanes = RowStore::new(n);
        for (i, row) in rows.iter().enumerate() {
            let mut row = row.clone();
            row[i] = LinkEntry::live(0, 0.0);
            dense.update_row(i, &row, 0.0);
            lanes.update_row(i, &row, 0.0);
        }
        for &(a, b) in &pairs {
            // Origins 0..rows.len() all hold rows; `a` is one of them.
            if a == b {
                continue;
            }
            let want = dense.best_one_hop(a, b, 1.0, 45.0);
            let got = lanes.best_one_hop(a, b, 1.0, 45.0);
            prop_assert_eq!(got, want, "store parity a={} b={}", a, b);

            // Raw kernel over borrowed Sparse views of the same rows.
            if b < rows.len() {
                let pa = live_pairs(&dense.row_dense(a).unwrap());
                let pb = live_pairs(&dense.row_dense(b).unwrap());
                let ra = RowRef::Sparse { width: n, entries: &pa };
                let rb = RowRef::Sparse { width: n, entries: &pb };
                let raw = best_one_hop_rows(&ra, &rb, a, b)
                    .map(|(h, c)| (h, f64::from(c)));
                prop_assert_eq!(raw, want, "RowRef::Sparse parity a={} b={}", a, b);
            }

            prop_assert_eq!(
                lanes.one_hop_options(a, b, 1.0, 45.0),
                dense.one_hop_options(a, b, 1.0, 45.0)
            );
        }
    }

    /// `best_hops_batch` is exactly n independent `best_one_hop` calls,
    /// including over all-dead and single-entry rows.
    #[test]
    fn batch_matches_singles(spec in arb_sparse_rows(16)) {
        let n = 16;
        let mut store = RowStore::new(n);
        for (o, row) in &spec {
            store.update_row(*o, row, 0.0);
        }
        let dests: Vec<usize> = (0..n).collect();
        for (a, _) in &spec {
            let batch = store.best_hops_batch(*a, &dests, 1.0, 45.0);
            prop_assert_eq!(batch.len(), dests.len());
            for (&d, got) in dests.iter().zip(batch) {
                let want = if d == *a {
                    None
                } else {
                    store.best_one_hop(*a, d, 1.0, 45.0)
                };
                prop_assert_eq!(got, want, "a={} d={}", a, d);
            }
        }
    }

    /// Lane rows hold the exact wire bytes: a row stored after a
    /// `wire.rs` encode/decode round trip is bit-identical to the same
    /// row stored directly, for arbitrary latency/liveness/loss —
    /// including off-grid loss rates and the latency-65535 clamp.
    #[test]
    fn lanes_wire_roundtrip_bit_identical(row in arb_row(64)) {
        let msg = Message::LinkState(LinkStateMsg {
            from: NodeId::from_index(1),
            to: NodeId::from_index(2),
            view: 7,
            round: 3,
            basis_ms: 250,
            entries: row.clone(),
            seqno: 0,
            retractions: vec![],
        });
        let Ok(Message::LinkState(decoded)) = Message::decode(&msg.encode()) else {
            panic!("dense wire round trip failed");
        };
        prop_assert_eq!(
            LaneRow::from_dense(&row),
            LaneRow::from_dense(&decoded.entries),
            "dense wire path not bit-identical"
        );

        // Same property through the sparse (live-pairs) wire frame.
        let pairs = live_pairs(&row);
        let smsg = Message::LinkStateSparse(SparseLinkStateMsg {
            from: NodeId::from_index(1),
            to: NodeId::from_index(2),
            view: 7,
            round: 3,
            basis_ms: 250,
            width: 64,
            entries: pairs.clone(),
            seqno: 0,
            retractions: vec![],
        });
        let Ok(Message::LinkStateSparse(sdec)) = Message::decode(&smsg.encode()) else {
            panic!("sparse wire round trip failed");
        };
        prop_assert_eq!(
            LaneRow::from_pairs(&pairs),
            LaneRow::from_pairs(&sdec.entries),
            "sparse wire path not bit-identical"
        );
    }
}

/// A stale first-leg row makes the whole batch `None` — matching what
/// n freshness-checked `best_one_hop` calls would return.
#[test]
fn batch_all_none_when_row_stale() {
    let n = 8;
    let mut store = RowStore::new(n);
    let row: Vec<LinkEntry> = (0..n as u16).map(|d| LinkEntry::live(d + 1, 0.0)).collect();
    store.update_row(0, &row, 0.0);
    store.update_row(1, &row, 0.0);
    let dests: Vec<usize> = (0..n).collect();
    // Fresh at t=1, stale at t=100 (max_age 45).
    assert!(store
        .best_hops_batch(0, &dests, 1.0, 45.0)
        .iter()
        .any(Option::is_some));
    assert!(store
        .best_hops_batch(0, &dests, 100.0, 45.0)
        .iter()
        .all(Option::is_none));
}
