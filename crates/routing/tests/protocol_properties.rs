//! Property-based tests on the routing protocol cores.

use apor_linkstate::{LinkEntry, LinkStateStore, LinkStateTable, RowStore};
use apor_routing::prober::{ProbeAction, Prober};
use apor_routing::ProtocolConfig;
use proptest::prelude::*;

/// Naive reference for the round-two kernel: exhaustive minimum over the
/// direct link and every relay.
fn reference_best_one_hop(table: &LinkStateTable, a: usize, b: usize) -> Option<(usize, f64)> {
    let n = table.len();
    let direct = table.entry(a, b).cost().min(table.entry(b, a).cost());
    let mut best = (b, direct);
    for h in 0..n {
        if h == a || h == b {
            continue;
        }
        let c = table.entry(a, h).cost() + table.entry(b, h).cost();
        if c < best.1 {
            best = (h, c);
        }
    }
    best.1.is_finite().then_some(best)
}

fn arb_table(n: usize) -> impl Strategy<Value = LinkStateTable> {
    prop::collection::vec(
        prop::collection::vec((1u16..2000, prop::bool::weighted(0.85)), n),
        n,
    )
    .prop_map(move |rows| {
        let mut t = LinkStateTable::new(n);
        for (i, row) in rows.iter().enumerate() {
            let entries: Vec<LinkEntry> = row
                .iter()
                .enumerate()
                .map(|(j, &(lat, alive))| {
                    if i == j {
                        LinkEntry::live(0, 0.0)
                    } else if alive {
                        LinkEntry::live(lat, 0.0)
                    } else {
                        LinkEntry::dead()
                    }
                })
                .collect();
            t.update_row(i, &entries, 0.0);
        }
        t
    })
}

proptest! {
    /// The optimized kernel agrees with the exhaustive reference on
    /// arbitrary (partially dead) link-state tables.
    #[test]
    fn best_one_hop_matches_reference(table in arb_table(12), a in 0usize..12, b in 0usize..12) {
        prop_assume!(a != b);
        let got = table.best_one_hop(a, b, 1.0, 45.0);
        let want = reference_best_one_hop(&table, a, b);
        match (got, want) {
            (None, None) => {}
            (Some((gh, gc)), Some((wh, wc))) => {
                prop_assert!((gc - wc).abs() < 1e-9, "cost {gc} vs {wc}");
                // Hop may differ only on exact ties.
                if gh != wh {
                    let g_cost = if gh == b {
                        table.entry(a, b).cost().min(table.entry(b, a).cost())
                    } else {
                        table.entry(a, gh).cost() + table.entry(b, gh).cost()
                    };
                    prop_assert!((g_cost - wc).abs() < 1e-9, "non-tie hop mismatch");
                }
            }
            (g, w) => prop_assert!(false, "mismatch: {g:?} vs {w:?}"),
        }
    }

    /// The kernel never returns a path through a dead link, and its cost
    /// is always achievable from the table's entries.
    #[test]
    fn best_one_hop_cost_achievable(table in arb_table(10), a in 0usize..10, b in 0usize..10) {
        prop_assume!(a != b);
        if let Some((hop, cost)) = table.best_one_hop(a, b, 1.0, 45.0) {
            prop_assert!(cost.is_finite());
            if hop == b {
                let direct = table.entry(a, b).cost().min(table.entry(b, a).cost());
                prop_assert!((cost - direct).abs() < 1e-9);
            } else {
                prop_assert!(table.entry(a, hop).alive);
                prop_assert!(table.entry(b, hop).alive);
            }
        }
    }

    /// The sparse row store is observationally equivalent to the dense
    /// table: fed identical rows, every kernel output matches (the
    /// kernel is written once over the trait, so this pins the storage
    /// layer, not the algorithm).
    #[test]
    fn sparse_store_matches_dense(table in arb_table(12), a in 0usize..12, b in 0usize..12) {
        let mut sparse = RowStore::new(12);
        for origin in table.present_rows() {
            sparse.update_row(origin, &table.row_dense(origin).unwrap(), table.row_time(origin).unwrap());
        }
        prop_assert_eq!(sparse.row_count(), table.row_count());
        prop_assert_eq!(
            table.best_one_hop(a, b, 1.0, 45.0),
            sparse.best_one_hop(a, b, 1.0, 45.0)
        );
        prop_assert_eq!(
            table.one_hop_options(a, b, 1.0, 45.0),
            sparse.one_hop_options(a, b, 1.0, 45.0)
        );
        prop_assert_eq!(
            table.anyone_reaches(b, 1.0, 45.0),
            sparse.anyone_reaches(b, 1.0, 45.0)
        );
    }

    /// Prober liveness follows the 5-consecutive-failures rule for any
    /// reply pattern: after processing a sequence of probe outcomes, the
    /// link is alive iff a reply ever arrived and the trailing failure run
    /// is < 5.
    #[test]
    fn prober_liveness_matches_rule(pattern in prop::collection::vec(any::<bool>(), 1..120)) {
        let cfg = ProtocolConfig::quorum();
        let mut p = Prober::new(0, 2, cfg.clone(), 0.0);
        let mut t = 0.0;
        let mut outcomes: Vec<bool> = Vec::new(); // true = replied
        let mut k = 0;
        while k < pattern.len() {
            for action in p.poll(t) {
                let ProbeAction::SendProbe { seq, .. } = action else {
                    panic!("full-mesh probing sends single probes");
                };
                if k < pattern.len() {
                    if pattern[k] {
                        p.on_reply(1, seq, t + 0.01);
                    }
                    outcomes.push(pattern[k]);
                    k += 1;
                }
            }
            t += 0.5;
            prop_assume!(t < 50_000.0);
        }
        // Let the last probe time out if it went unanswered.
        t += cfg.probe_timeout_s + 0.1;
        let _ = p.poll(t);

        let ever_replied = outcomes.iter().any(|&r| r);
        let trailing_failures = outcomes.iter().rev().take_while(|&&r| !r).count() as u32;
        let expected_alive = ever_replied && trailing_failures < cfg.probes_for_failure;
        prop_assert_eq!(
            p.alive(1),
            expected_alive,
            "pattern {:?}: trailing failures {}",
            outcomes,
            trailing_failures
        );
    }
}
