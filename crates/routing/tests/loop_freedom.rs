//! Loop-freedom of the feasibility-gated detour layer.
//!
//! The property under test: when every node forwards with the same
//! (converged quorum) row store but its **own** history-dependent
//! feasibility table — the realistic danger zone, because feasibility
//! distances remember costs from before the churn — walking the
//! next-hop chain produced by [`select_detour`] never revisits a node.
//! Packets may be *dropped* (no feasible detour is a legitimate
//! outcome; recovery then waits for the origin to bump its seqno), but
//! they must never cycle.
//!
//! The generator runs a multi-epoch history over a ground-truth cost
//! matrix: random link deaths and heals, a clean partition that later
//! heals, origins that skip re-publishing (stale rows, filtered by the
//! freshness rule), per-origin seqno bumps and retraction lanes on
//! link death — the same discipline `QuorumRouter::on_routing_tick`
//! applies. Per-node feasibility tables advance from each node's live
//! direct links every epoch and retract on link loss, exactly as the
//! router does.

use apor_linkstate::{LinkEntry, LinkStateStore, RowStore};
use apor_routing::feasibility::{select_detour, FeasibilityTable};
use proptest::prelude::*;

const MAX_AGE: f64 = 45.0;
const EPOCH_S: f64 = 15.0;

/// Raw per-epoch event material; indices are reduced modulo `n` inside
/// the test body (the stub proptest has no dependent generation).
type RawEpoch = (Vec<(usize, usize)>, Vec<(usize, usize)>, Vec<usize>);

fn base_cost(a: usize, b: usize) -> u16 {
    #[allow(clippy::cast_possible_truncation)]
    let c = 10 + 37 * (1 + (a * b) % 13) as u16;
    c
}

fn truth_row(truth: &[Vec<u16>], o: usize) -> Vec<LinkEntry> {
    truth[o]
        .iter()
        .enumerate()
        .map(|(j, &c)| {
            if j == o {
                LinkEntry::live(0, 0.0)
            } else if c == u16::MAX {
                LinkEntry::dead()
            } else {
                LinkEntry::live(c, 0.0)
            }
        })
        .collect()
}

fn next_seqno(s: u16) -> u16 {
    let n = s.wrapping_add(1);
    if n == 0 {
        1
    } else {
        n
    }
}

/// Replay one history over a shared store + per-node feasibility
/// tables, returning everything the walk phase needs.
struct Replay {
    store: RowStore,
    feas: Vec<FeasibilityTable>,
    now: f64,
}

fn replay(n: usize, raw_epochs: &[RawEpoch], partition_epoch: usize) -> Replay {
    let mut truth: Vec<Vec<u16>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| if i == j { 0 } else { base_cost(i, j) })
                .collect()
        })
        .collect();
    let mut store = RowStore::new(n);
    let mut feas: Vec<FeasibilityTable> = (0..n).map(|_| FeasibilityTable::new()).collect();
    let mut seqno: Vec<u16> = vec![1; n];
    let mut now = 0.0;
    let partition_epoch = partition_epoch % raw_epochs.len().max(1);

    for (e, (kills, heals, silent)) in raw_epochs.iter().enumerate() {
        now = EPOCH_S * (e + 1) as f64;
        let mut died: Vec<Vec<u16>> = vec![Vec::new(); n];
        #[allow(clippy::cast_possible_truncation)]
        let kill = |truth: &mut Vec<Vec<u16>>, died: &mut Vec<Vec<u16>>, a: usize, b: usize| {
            if a != b && truth[a][b] != u16::MAX {
                truth[a][b] = u16::MAX;
                truth[b][a] = u16::MAX;
                died[a].push(b as u16);
                died[b].push(a as u16);
            }
        };
        for &(a, b) in kills {
            kill(&mut truth, &mut died, a % n, b % n);
        }
        if e == partition_epoch {
            for a in 0..n / 2 {
                for b in n / 2..n {
                    kill(&mut truth, &mut died, a, b);
                }
            }
        }
        let heal = |truth: &mut Vec<Vec<u16>>, a: usize, b: usize| {
            if a != b && truth[a][b] == u16::MAX {
                truth[a][b] = base_cost(a, b);
                truth[b][a] = base_cost(a, b);
            }
        };
        if e == partition_epoch + 1 {
            for a in 0..n / 2 {
                for b in n / 2..n {
                    heal(&mut truth, a, b);
                }
            }
        }
        for &(a, b) in heals {
            heal(&mut truth, a % n, b % n);
        }

        // Origin-side discipline: a death bumps the seqno once and goes
        // on the retraction lane; then publish (unless silent, which
        // leaves the old row — old contents, old receipt time — in the
        // store as a stale row).
        let silent: Vec<usize> = silent.iter().map(|&s| s % n).collect();
        for o in 0..n {
            if !died[o].is_empty() {
                seqno[o] = next_seqno(seqno[o]);
            }
            if silent.contains(&o) {
                continue;
            }
            let mut lane = died[o].clone();
            lane.sort_unstable();
            lane.dedup();
            store.update_row_versioned(o, &truth_row(&truth, o), seqno[o], &lane, now);
        }
        // Receiver-side discipline, per node: note seqnos, retract lost
        // direct links, advance fd over the live ones.
        for i in 0..n {
            for d in 0..n {
                if d == i {
                    continue;
                }
                feas[i].note_seqno(d, store.row_seqno(d));
                if died[i].contains(&(d as u16)) {
                    feas[i].retract(d, store.row_seqno(d));
                }
                let entry = store.entry(i, d);
                if entry.alive {
                    feas[i].advance(d, store.row_seqno(d), entry.cost());
                }
            }
        }
    }
    Replay { store, feas, now }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// No next-hop chain ever revisits a node, across randomized
    /// multi-epoch churn (link deaths, heals, a partition that heals,
    /// stale rows) with per-node feasibility state.
    #[test]
    fn detour_chains_never_loop(
        n in 6usize..10,
        max_hops in 2usize..=8,
        raw_epochs in prop::collection::vec(
            (
                prop::collection::vec((0usize..64, 0usize..64), 0..4),
                prop::collection::vec((0usize..64, 0usize..64), 0..3),
                prop::collection::vec(0usize..64, 0..3),
            ),
            3..6,
        ),
        partition_epoch in 0usize..4,
    ) {
        let r = replay(n, &raw_epochs, partition_epoch);
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let mut visited = vec![false; n];
                visited[src] = true;
                let mut cur = src;
                for _ in 0..=n {
                    if cur == dst {
                        break; // delivered
                    }
                    let direct = r.store.row_fresh(cur, r.now, MAX_AGE)
                        && r.store.entry(cur, dst).alive;
                    let next = if direct {
                        dst
                    } else if let Some(d) = select_detour(
                        &r.store, &r.feas[cur], cur, dst, max_hops, r.now, MAX_AGE,
                    ) {
                        d.path[1]
                    } else {
                        break; // dropped: feasibility refused every candidate
                    };
                    prop_assert!(
                        !visited[next],
                        "forwarding loop: {src}→{dst} revisits {next} (at {cur})"
                    );
                    visited[next] = true;
                    cur = next;
                }
            }
        }
    }

    /// Spliced candidate paths are simple and structurally sound:
    /// start at the source, end at the destination, never repeat a
    /// node, never exceed `max_hops` relays, and never advertise a
    /// remaining cost above the total.
    #[test]
    fn candidate_paths_are_simple(
        n in 6usize..10,
        max_hops in 2usize..=8,
        dead_stride in 2usize..6,
        src in 0usize..6,
        dst in 0usize..6,
    ) {
        prop_assume!(src != dst);
        let mut store = RowStore::new(n);
        for o in 0..n {
            let row: Vec<LinkEntry> = (0..n)
                .map(|j| {
                    if j == o {
                        LinkEntry::live(0, 0.0)
                    } else if (o + j) % dead_stride == 0 {
                        LinkEntry::dead()
                    } else {
                        #[allow(clippy::cast_possible_truncation)]
                        LinkEntry::live(10 + ((o * 7 + j * 3) % 90) as u16, 0.0)
                    }
                })
                .collect();
            store.update_row_versioned(o, &row, 1, &[], 1.0);
        }
        for (path, total, advertised) in store.k_hop_options(src, dst, max_hops, 2.0, MAX_AGE) {
            prop_assert_eq!(path[0], src);
            prop_assert_eq!(*path.last().unwrap(), dst);
            prop_assert!(path.len() <= max_hops + 2, "path {path:?} too long");
            let mut seen = vec![false; n];
            for &p in &path {
                prop_assert!(!seen[p], "candidate revisits {p}: {path:?}");
                seen[p] = true;
            }
            prop_assert!(advertised <= total, "remaining exceeds total");
        }
    }
}
