//! Adaptive per-link probe rates — the paper's deployment tuning.
//!
//! A link that has been stable for a long time does not need a probe
//! every `probe_interval_s`: the deployment section keeps probing
//! affordable at scale by backing off on stable links and snapping back
//! the moment anything changes. [`AdaptiveProbeRate`] is that state
//! machine, one instance per probed link:
//!
//! * every *stable* sample (a reply whose latency moved less than
//!   `probe_snap_frac` relative to the previous one) multiplies the
//!   interval by `probe_backoff`, saturating at `probe_interval_max_s`;
//! * a *loss* (probe timeout), or a latency swing of more than
//!   `probe_snap_frac`, snaps the interval straight back to
//!   `rapid_probe_interval_s` so failure detection regains the RON
//!   cadence exactly when it matters.
//!
//! The interval is always within `[rapid_probe_interval_s,
//! probe_interval_max_s]` — property-tested below.

use crate::config::ProtocolConfig;

/// What one completed probe told us about the link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateSample {
    /// A reply arrived with this measured RTT.
    Reply {
        /// Round-trip time, milliseconds.
        latency_ms: f64,
    },
    /// The probe timed out.
    Loss,
}

/// Per-link probe-interval controller (see module docs).
#[derive(Debug, Clone)]
pub struct AdaptiveProbeRate {
    rapid_s: f64,
    max_s: f64,
    backoff: f64,
    snap_frac: f64,
    interval_s: f64,
    last_latency_ms: Option<f64>,
    /// Adaptation is enabled only when the ceiling actually exceeds the
    /// base probing interval. With the paper's default
    /// (`probe_interval_max_s == probe_interval_s`) the controller is a
    /// strict no-op and the prober reproduces RON's fixed cadence
    /// *exactly* — rapid failure re-probing is handled by the prober's
    /// timeout pull-in, not by this rate.
    adaptive: bool,
}

impl AdaptiveProbeRate {
    /// A controller starting at `base_s` (normally `probe_interval_s`),
    /// with the rate band and backoff taken from `cfg`.
    #[must_use]
    pub fn new(cfg: &ProtocolConfig, base_s: f64) -> Self {
        let rapid_s = cfg.rapid_probe_interval_s;
        let max_s = cfg.probe_interval_max_s;
        let adaptive = cfg.probe_interval_max_s > cfg.probe_interval_s;
        AdaptiveProbeRate {
            rapid_s,
            max_s,
            backoff: cfg.probe_backoff,
            snap_frac: cfg.probe_snap_frac,
            interval_s: if adaptive {
                base_s.clamp(rapid_s, max_s)
            } else {
                base_s
            },
            last_latency_ms: None,
            adaptive,
        }
    }

    /// The current probe interval, seconds. Always within
    /// `[rapid_probe_interval_s, probe_interval_max_s]`.
    #[must_use]
    pub fn interval_s(&self) -> f64 {
        self.interval_s
    }

    /// Fold in the outcome of one probe.
    pub fn on_sample(&mut self, sample: RateSample) {
        if !self.adaptive {
            return;
        }
        match sample {
            RateSample::Loss => {
                self.interval_s = self.rapid_s;
                self.last_latency_ms = None;
            }
            RateSample::Reply { latency_ms } => {
                let moved = self
                    .last_latency_ms
                    .is_some_and(|prev| (latency_ms - prev).abs() > self.snap_frac * prev.max(1.0));
                if moved {
                    self.interval_s = self.rapid_s;
                } else {
                    self.interval_s = (self.interval_s * self.backoff).min(self.max_s);
                }
                self.last_latency_ms = Some(latency_ms);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg(max_s: f64) -> ProtocolConfig {
        ProtocolConfig {
            probe_interval_max_s: max_s,
            ..ProtocolConfig::quorum()
        }
    }

    #[test]
    fn stable_links_back_off_and_saturate() {
        let c = cfg(240.0);
        let mut r = AdaptiveProbeRate::new(&c, c.probe_interval_s);
        assert_eq!(r.interval_s(), 30.0);
        for _ in 0..10 {
            r.on_sample(RateSample::Reply { latency_ms: 50.0 });
        }
        assert_eq!(r.interval_s(), 240.0, "saturates at the ceiling");
    }

    #[test]
    fn loss_snaps_back_to_rapid() {
        let c = cfg(240.0);
        let mut r = AdaptiveProbeRate::new(&c, c.probe_interval_s);
        for _ in 0..10 {
            r.on_sample(RateSample::Reply { latency_ms: 50.0 });
        }
        r.on_sample(RateSample::Loss);
        assert_eq!(r.interval_s(), c.rapid_probe_interval_s);
    }

    #[test]
    fn latency_swing_snaps_back_to_rapid() {
        let c = cfg(240.0);
        let mut r = AdaptiveProbeRate::new(&c, c.probe_interval_s);
        for _ in 0..10 {
            r.on_sample(RateSample::Reply { latency_ms: 50.0 });
        }
        // +29% is within the default 0.3 snap fraction.
        r.on_sample(RateSample::Reply { latency_ms: 64.0 });
        assert_eq!(r.interval_s(), 240.0);
        // +50% is a route change; back to rapid.
        r.on_sample(RateSample::Reply { latency_ms: 96.0 });
        assert_eq!(r.interval_s(), c.rapid_probe_interval_s);
    }

    #[test]
    fn default_ceiling_disables_backoff() {
        // probe_interval_max_s == probe_interval_s by default, so the
        // controller is inert: replies never raise the interval, and
        // losses never lower it — the prober's timeout pull-in alone
        // drives rapid re-probing, exactly like the fixed-cadence RON
        // discipline.
        let c = ProtocolConfig::quorum();
        let mut r = AdaptiveProbeRate::new(&c, c.probe_interval_s);
        for _ in 0..5 {
            r.on_sample(RateSample::Reply { latency_ms: 10.0 });
        }
        assert_eq!(r.interval_s(), c.probe_interval_s);
        r.on_sample(RateSample::Loss);
        assert_eq!(r.interval_s(), c.probe_interval_s);
    }

    fn arb_sample() -> impl Strategy<Value = RateSample> {
        prop_oneof![
            (1.0f64..2000.0).prop_map(|latency_ms| RateSample::Reply { latency_ms }),
            (0u32..1).prop_map(|_| RateSample::Loss),
        ]
    }

    proptest! {
        /// The interval stays inside `[rapid, max]` under any sample
        /// sequence, and a loss always resets it to rapid.
        #[test]
        fn interval_stays_in_band(samples in prop::collection::vec(arb_sample(), 1..60)) {
            let c = cfg(480.0);
            let mut r = AdaptiveProbeRate::new(&c, c.probe_interval_s);
            for s in samples {
                r.on_sample(s);
                prop_assert!(r.interval_s() >= c.rapid_probe_interval_s);
                prop_assert!(r.interval_s() <= c.probe_interval_max_s);
                if s == RateSample::Loss {
                    prop_assert_eq!(r.interval_s(), c.rapid_probe_interval_s);
                }
            }
        }

        /// Identical stable replies never *decrease* the interval —
        /// backoff is monotone until something changes.
        #[test]
        fn stable_backoff_is_monotone(latency in 1.0f64..500.0, n in 1usize..20) {
            let c = cfg(480.0);
            let mut r = AdaptiveProbeRate::new(&c, c.rapid_probe_interval_s);
            let mut prev = r.interval_s();
            for _ in 0..n {
                r.on_sample(RateSample::Reply { latency_ms: latency });
                prop_assert!(r.interval_s() >= prev);
                prev = r.interval_s();
            }
        }
    }
}
