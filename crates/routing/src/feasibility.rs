//! The Babel-style route discipline (RFC 8966) over link-state rows:
//! per-destination feasibility distances, seqno-gated acceptance, and
//! explicit retraction — the machinery that makes k-hop detour splicing
//! loop-free under churn and stale rows.
//!
//! Every destination `d` originates its own row; the row carries `d`'s
//! sequence number. A node tracks, per destination, the smallest cost
//! it has ever acted on at the destination's current seqno — the
//! *feasibility distance* (fd). Loop freedom is layered:
//!
//! 1. **Commit-or-drop** ([`select_detour`]): a node forwards along
//!    its single cheapest spliced candidate or drops — never a pricier
//!    fallback. With positive link costs over shared row state, the
//!    remaining total cost then strictly decreases hop over hop, so a
//!    chain can never revisit a node (a revisited node would need a
//!    candidate cheaper than its own minimum).
//! 2. **Feasibility** (the DUAL/Babel condition): where row state has
//!    diverged, the cheapest candidate is accepted only when the cost
//!    its first relay effectively advertises for the remaining path is
//!    **strictly** below the node's own fd at the destination's seqno
//!    (or carries a strictly newer seqno) — stale cheapness from
//!    before a failure cannot be acted on. Recovering a route that
//!    feasibility forbids requires the origin to bump its seqno (which
//!    it does on every retraction event), never a local override.
//!
//! Both arguments hold even if every relay re-decides per hop (the
//! model `tests/loop_freedom.rs` stress-walks). The overlay is
//! stricter still: an accepted splice is *source-routed* — the
//! committed path travels with the decision
//! (`QuorumRouter::route_decision` → `RouteDecision::Spliced`) and
//! relays forward without re-deciding, so a spliced path is loop-free
//! simply because [`LinkStateStore::k_hop_options`] never emits a
//! path that repeats a node.
//!
//! The table also owns the detour-layer telemetry: candidates rejected
//! by the discipline count as `routing/loops_detected` (each rejection
//! is a potential forwarding loop refused), explicit withdrawals count
//! as `routing/routes_retracted`, and accepted detours feed the
//! `routing/detour_hops` histogram.

use apor_linkstate::{seqno_newer, Cost, LinkStateStore, INFINITE_COST};
use apor_telemetry::{Counter, Histogram, Telemetry};
use std::collections::BTreeMap;

/// Per-destination feasibility state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeasEntry {
    /// The destination-origin seqno this state is relative to.
    pub seqno: u16,
    /// Feasibility distance: the smallest cost acted on at `seqno`
    /// ([`INFINITE_COST`] = unconstrained).
    pub fd: Cost,
    /// Set when the route was explicitly withdrawn: only a strictly
    /// newer seqno restores feasibility.
    pub retracted: bool,
}

/// Per-(source, destination) feasibility distances for one node, where
/// the *source* of a destination's reachability is the destination's
/// own row origin (it vouches for itself, like a Babel router
/// originating its prefix).
#[derive(Debug)]
pub struct FeasibilityTable {
    entries: BTreeMap<usize, FeasEntry>,
    loops_detected: Counter,
    routes_retracted: Counter,
    detour_hops: Histogram,
}

impl Default for FeasibilityTable {
    fn default() -> Self {
        Self::new()
    }
}

impl FeasibilityTable {
    /// An empty table on the disabled telemetry registry.
    #[must_use]
    pub fn new() -> Self {
        Self::with_telemetry(&Telemetry::disabled())
    }

    /// An empty table counting under component `"routing"` on a live
    /// registry.
    #[must_use]
    pub fn with_telemetry(t: &Telemetry) -> Self {
        FeasibilityTable {
            entries: BTreeMap::new(),
            loops_detected: t.counter("routing", "loops_detected"),
            routes_retracted: t.counter("routing", "routes_retracted"),
            detour_hops: t.histogram("routing", "detour_hops"),
        }
    }

    /// The feasibility state for `dst`, if any has been established.
    #[must_use]
    pub fn entry(&self, dst: usize) -> Option<FeasEntry> {
        self.entries.get(&dst).copied()
    }

    /// Is a route to `dst` advertised at (`seqno`, `cost`) feasible?
    /// No established state means unconstrained; a strictly newer seqno
    /// is always feasible; at the current seqno the advertised cost
    /// must be **strictly** below the feasibility distance (and the
    /// entry not retracted); an older seqno never is.
    #[must_use]
    pub fn is_feasible(&self, dst: usize, seqno: u16, cost: Cost) -> bool {
        match self.entries.get(&dst) {
            None => true,
            Some(e) => {
                if seqno_newer(e.seqno, seqno) {
                    true
                } else if seqno == e.seqno {
                    !e.retracted && cost < e.fd
                } else {
                    false
                }
            }
        }
    }

    /// Record that this node acted on a route to `dst` costing `cost`
    /// at the destination's `seqno`: the fd ratchets down at one seqno
    /// and resets when the origin moves to a newer one. Older seqnos
    /// are ignored.
    pub fn advance(&mut self, dst: usize, seqno: u16, cost: Cost) {
        let e = self.entries.entry(dst).or_insert(FeasEntry {
            seqno,
            fd: INFINITE_COST,
            retracted: false,
        });
        if seqno_newer(e.seqno, seqno) {
            *e = FeasEntry {
                seqno,
                fd: cost,
                retracted: false,
            };
        } else if seqno == e.seqno && !e.retracted {
            e.fd = e.fd.min(cost);
        } else if seqno == 0 && e.seqno == 0 && e.retracted {
            // Unversioned destinations (a row this node is not entitled
            // to hold never shows a seqno) have no bump to recover
            // through: a retraction there is *soft*, cleared by fresh
            // evidence the route works again — acting on it at `cost`.
            *e = FeasEntry {
                seqno: 0,
                fd: cost,
                retracted: false,
            };
        }
    }

    /// The origin of `dst`'s row announced `seqno`: a strictly newer
    /// one clears the fd constraint (and any retraction) — the Babel
    /// seqno-request escape hatch, closed by the origin's bump.
    pub fn note_seqno(&mut self, dst: usize, seqno: u16) {
        if let Some(e) = self.entries.get_mut(&dst) {
            if seqno_newer(e.seqno, seqno) {
                *e = FeasEntry {
                    seqno,
                    fd: INFINITE_COST,
                    retracted: false,
                };
            }
        }
    }

    /// Explicitly withdraw the route to `dst`, known to be at the
    /// destination-origin `seqno` (an established entry keeps its own,
    /// possibly newer, seqno). Returns `true` (and counts
    /// `routing/routes_retracted`) on the transition into the retracted
    /// state; re-retracting is a no-op.
    pub fn retract(&mut self, dst: usize, seqno: u16) -> bool {
        let e = self.entries.entry(dst).or_insert(FeasEntry {
            seqno,
            fd: INFINITE_COST,
            retracted: false,
        });
        if e.retracted {
            return false;
        }
        e.retracted = true;
        self.routes_retracted.inc();
        true
    }

    /// The seqno that would make `dst` feasible again — what a Babel
    /// seqno request would ask the origin for. In this overlay origins
    /// bump unprompted on every retraction event, so the request is
    /// implicit; the value is still useful to tests and diagnostics.
    #[must_use]
    pub fn request_seqno(&self, dst: usize) -> u16 {
        let next = self
            .entries
            .get(&dst)
            .map_or(1, |e| e.seqno.wrapping_add(1));
        if next == 0 {
            1
        } else {
            next
        }
    }

    /// Drop all feasibility state (view change: indices are remapped,
    /// so every fd is about a destination that may no longer exist).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Detour candidates rejected by the discipline so far — each one a
    /// potential forwarding loop refused.
    #[must_use]
    pub fn loops_detected(&self) -> u64 {
        self.loops_detected.get()
    }

    /// Explicit route withdrawals recorded so far.
    #[must_use]
    pub fn routes_retracted(&self) -> u64 {
        self.routes_retracted.get()
    }

    fn count_loop(&self) {
        self.loops_detected.inc();
    }

    fn observe_detour(&self, hops: usize) {
        self.detour_hops.observe(hops as u64);
    }
}

/// A feasibility-accepted k-hop detour.
#[derive(Debug, Clone, PartialEq)]
pub struct Detour {
    /// The full spliced path; `path[0]` is the selecting node,
    /// `path[1]` the first relay, the last element the destination.
    pub path: Vec<usize>,
    /// Total path cost, ms.
    pub cost: Cost,
    /// The cost the first relay effectively advertises for the rest of
    /// the path — what the feasibility check ran against.
    pub advertised: Cost,
}

/// Pick the *cheapest* detour `me → … → dst` through at most
/// `max_hops` intermediate relays, or nothing: candidates come from
/// [`LinkStateStore::k_hop_options`] (cost-sorted, simple paths over
/// fresh rows only), and only the single cheapest one is considered.
/// It is admitted if its first relay's advertised remaining cost is
/// strictly feasible under `feas` and the relay's row does not
/// explicitly retract its next edge; otherwise the packet is dropped —
/// **never** demoted to a pricier candidate.
///
/// Commit-or-drop is what keeps hop-by-hop forwarding loop-free: with
/// every node forwarding along its cheapest spliced path (positive
/// link costs, shared row state), the remaining total cost strictly
/// decreases at each hop — a revisited node would have to hold a
/// candidate cheaper than its own minimum. Falling through to the
/// second-cheapest candidate is exactly how transient loops form: the
/// next relay, whose cheapest path may lead straight back, has no way
/// to know this node already passed over it. Where row state *has*
/// diverged (stale rows, delayed frames), the seqno/fd discipline
/// bounds the damage: a node never acts on a remainder at or above the
/// best cost it has itself acted on at the destination's current
/// seqno, so stale cheapness cannot re-enter. A rejected candidate
/// counts as a detected loop; the accepted one feeds the detour-hops
/// histogram. Recovery from a drop is the origin's next seqno bump —
/// one routing tick — not a worse route now.
pub fn select_detour<S: LinkStateStore + ?Sized>(
    store: &S,
    feas: &FeasibilityTable,
    me: usize,
    dst: usize,
    max_hops: usize,
    now: f64,
    max_age: f64,
) -> Option<Detour> {
    let seqno = store.row_seqno(dst);
    let (path, cost, advertised) = store
        .k_hop_options(me, dst, max_hops, now, max_age)
        .into_iter()
        .next()?;
    if store.row_retracts(path[1], path[2]) || !feas.is_feasible(dst, seqno, advertised) {
        feas.count_loop();
        return None;
    }
    feas.observe_detour(path.len() - 1);
    Some(Detour {
        path,
        cost,
        advertised,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use apor_linkstate::{LinkEntry, RowStore};

    #[test]
    fn feasibility_is_strict_at_one_seqno() {
        let mut f = FeasibilityTable::new();
        assert!(f.is_feasible(3, 1, 500.0), "no state, no constraint");
        f.advance(3, 1, 100.0);
        assert!(f.is_feasible(3, 1, 99.0));
        assert!(!f.is_feasible(3, 1, 100.0), "equality is not feasible");
        assert!(!f.is_feasible(3, 1, 101.0));
        // A strictly newer seqno is always feasible; an older one never.
        assert!(f.is_feasible(3, 2, 500.0));
        assert!(!f.is_feasible(3, 0, 1.0));
        // fd ratchets down, never up.
        f.advance(3, 1, 40.0);
        f.advance(3, 1, 80.0);
        assert_eq!(f.entry(3).unwrap().fd, 40.0);
        // The origin bumping its seqno resets the constraint.
        f.note_seqno(3, 2);
        assert!(f.is_feasible(3, 2, 500.0));
        assert_eq!(f.entry(3).unwrap().fd, INFINITE_COST);
    }

    #[test]
    fn retraction_requires_a_newer_seqno_to_recover() {
        let mut f = FeasibilityTable::new();
        f.advance(7, 5, 100.0);
        assert!(f.retract(7, 5));
        assert!(!f.retract(7, 5), "re-retracting is a no-op");
        assert_eq!(f.routes_retracted(), 1);
        assert!(!f.is_feasible(7, 5, 1.0), "retracted at this seqno");
        assert_eq!(f.request_seqno(7), 6);
        assert!(f.is_feasible(7, 6, 1.0), "the requested seqno recovers");
        f.note_seqno(7, 6);
        assert!(!f.entry(7).unwrap().retracted);
    }

    #[test]
    fn unversioned_retraction_is_soft() {
        // A destination whose row this node never holds stays at seqno
        // 0 forever — no bump can arrive, so the retraction must yield
        // to fresh evidence (a new recommendation being acted on).
        let mut f = FeasibilityTable::new();
        f.advance(4, 0, 80.0);
        assert!(f.retract(4, 0));
        assert!(!f.is_feasible(4, 0, 1.0));
        f.advance(4, 0, 120.0);
        assert!(f.is_feasible(4, 0, 119.0), "soft retraction cleared");
        assert_eq!(f.entry(4).unwrap().fd, 120.0, "fd restarts at the evidence");
        // Versioned retractions stay hard: only a newer seqno recovers.
        f.note_seqno(4, 3);
        f.advance(4, 3, 50.0);
        assert!(f.retract(4, 3));
        f.advance(4, 3, 60.0);
        assert!(!f.is_feasible(4, 3, 1.0), "versioned retraction holds");
    }

    #[test]
    fn select_detour_rejects_infeasible_candidates_as_loops() {
        // 0 → 1 → 2 with row 1 advertising 2 at cost 10.
        let n = 3;
        let mut s = RowStore::new(n);
        s.update_row(
            0,
            &[
                LinkEntry::live(0, 0.0),
                LinkEntry::live(10, 0.0),
                LinkEntry::dead(),
            ],
            1.0,
        );
        s.update_row(
            1,
            &[
                LinkEntry::live(10, 0.0),
                LinkEntry::live(0, 0.0),
                LinkEntry::live(10, 0.0),
            ],
            1.0,
        );
        let mut f = FeasibilityTable::new();
        let d = select_detour(&s, &f, 0, 2, 4, 1.5, 45.0).expect("unconstrained detour");
        assert_eq!(d.path, vec![0, 1, 2]);
        assert_eq!((d.cost, d.advertised), (20.0, 10.0));
        // Once our own fd to 2 is at or below the advertised cost, the
        // same candidate is a potential loop and must be refused.
        f.advance(2, 0, 10.0);
        assert!(select_detour(&s, &f, 0, 2, 4, 1.5, 45.0).is_none());
        assert_eq!(f.loops_detected(), 1);
        // An explicit retraction by the relay also kills the splice.
        let f = FeasibilityTable::new();
        assert!(s.update_row_versioned(
            1,
            &[
                LinkEntry::live(10, 0.0),
                LinkEntry::live(0, 0.0),
                LinkEntry::live(10, 0.0),
            ],
            2,
            &[2],
            2.0,
        ));
        assert!(select_detour(&s, &f, 0, 2, 4, 2.5, 45.0).is_none());
        assert_eq!(f.loops_detected(), 1);
    }
}
