//! The two-round grid-quorum router — the paper's contribution.
//!
//! Round one: send the measured link-state row to the rendezvous servers
//! (the node's grid row and column, ~`2√n` nodes) plus any active failover
//! servers. Round two (in the same tick, as a *server*): for every pair of
//! fresh rendezvous clients compute the optimal one-hop path and return
//! per-client recommendation messages. Every pair of nodes shares at least
//! two rendezvous servers, so every node keeps learning its optimal
//! one-hop route to every destination with `Θ(n√n)` per-node traffic.
//!
//! The router is generic over its [`LinkStateStore`]: the default
//! [`RowStore`] holds only the `O(√n)` rows the node actually receives
//! (so per-node state matches the paper's `O(n√n)` bound — the grid
//! removes not just the traffic but the memory of the full mesh), while
//! the dense [`LinkStateTable`](apor_linkstate::LinkStateTable) remains
//! pluggable for baseline comparisons in the scale experiments.
//!
//! Section 4's failure machinery is implemented in full:
//!
//! * **proximal failures** — my own probes say the server is dead;
//! * **remote failures** — the server is alive but stopped recommending a
//!   destination (it must have lost that destination's link state);
//! * **rapid rendezvous failover** — on a double failure, pick a random
//!   reachable node from the destination's row/column, send it link state
//!   immediately, and watch whether its recommendations cover the
//!   destination; retry otherwise;
//! * **dead-destination suppression** — after the first failover attempt,
//!   only keep trying while somebody's link-state table still reaches the
//!   destination;
//! * **reversion** — the failover server is dropped as soon as a default
//!   rendezvous works again;
//! * **§4.2 scavenging** — with no usable recommendation, route through
//!   the best of the `2√n` neighbour tables the node already holds.

use crate::config::ProtocolConfig;
use crate::feasibility::{select_detour, Detour, FeasibilityTable};
use crate::{RoutingAlgorithm, VersionedRow};
use apor_linkstate::{
    LinkEntry, LinkStateMsg, LinkStateStore, Message, RecEntry, RecommendationMsg, RowStore,
    SparseLinkStateMsg,
};
use apor_quorum::{Grid, NodeId};
use apor_telemetry::{Counter, Gauge, Histogram, SpanKind, Telemetry, TraceCtx, Tracer};
use rand::seq::SliceRandom;
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet};

/// A received best-hop recommendation for one destination.
#[derive(Debug, Clone, Copy)]
pub struct RouteEntry {
    /// Recommended first hop (`hop == dst` ⇒ direct link).
    pub hop: usize,
    /// The rendezvous server that sent it.
    pub from_server: usize,
    /// When it arrived, seconds.
    pub received_at: f64,
    /// Path cost as computed by the server, ms (`u16::MAX` = not on wire).
    pub cost_ms: u16,
}

/// How this node forwards towards a destination right now.
///
/// [`RouteDecision::Hop`] is the paper's forwarding mode — a fresh
/// recommendation, the direct link, or a 1-hop scavenge; each relay
/// re-decides from its own tables. [`RouteDecision::Spliced`] is the
/// feasibility-gated k-hop fallback: the source commits to the whole
/// relay chain and the packet is source-routed along it, because the
/// intermediate relays were chosen from rows *this* node holds — their
/// own stores need not contain the rows that justified the splice.
#[derive(Debug, Clone)]
pub enum RouteDecision {
    /// Forward to this first hop; downstream nodes re-decide.
    Hop(usize),
    /// Source-route along the spliced detour's full path.
    Spliced(Detour),
}

impl RouteDecision {
    /// The first hop either way — what the wire forwards to next.
    #[must_use]
    pub fn first_hop(&self) -> usize {
        match self {
            Self::Hop(h) => *h,
            Self::Spliced(d) => d.path[1],
        }
    }
}

/// Per-destination failover state (section 4.1).
#[derive(Debug, Clone, Default)]
struct FailoverState {
    /// The active failover rendezvous, if any.
    current: Option<usize>,
    /// Candidates already tried (and failed) in this episode.
    tried: BTreeSet<usize>,
    /// Set when the destination itself is believed dead.
    gave_up: bool,
}

/// Counters for experiments and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuorumMetrics {
    /// Failover rendezvous selections performed.
    pub failovers_selected: u64,
    /// Link-state messages sent.
    pub ls_sent: u64,
    /// Recommendation messages sent.
    pub recs_sent: u64,
    /// Recommendation entries received.
    pub rec_entries_received: u64,
}

/// Sentinel for "no timestamp yet" in the dense `serving_since` vector.
const NEVER: f64 = f64::NEG_INFINITY;

/// Registry-backed cells behind [`QuorumMetrics`]. The counters are the
/// single source of truth — [`QuorumRouter::metrics`] reconstructs the
/// public struct from them — so a router attached to a live [`Telemetry`]
/// feeds the fleet snapshot for free, and a detached one (the default
/// disabled registry) still counts for tests and experiments.
#[derive(Debug, Clone)]
struct RouterCounters {
    failovers_selected: Counter,
    ls_sent: Counter,
    recs_sent: Counter,
    rec_entries_received: Counter,
    /// Estimated heap bytes of the sparse `rec_seen` maps (16 bytes per
    /// `(dst, timestamp)` entry).
    rec_seen_bytes: Gauge,
    /// What the pre-compaction dense layout would cost for the same
    /// state: one `n × 8`-byte row per server that has ever recommended.
    rec_seen_bytes_dense: Gauge,
    /// Wall-clock cost of one round-two recommendation pass, µs.
    round_two_us: Histogram,
}

impl RouterCounters {
    fn new(t: &Telemetry) -> Self {
        RouterCounters {
            failovers_selected: t.counter("routing", "failovers_selected"),
            ls_sent: t.counter("routing", "ls_sent"),
            recs_sent: t.counter("routing", "recs_sent"),
            rec_entries_received: t.counter("routing", "rec_entries_received"),
            rec_seen_bytes: t.gauge("routing", "rec_seen_bytes"),
            rec_seen_bytes_dense: t.gauge("routing", "rec_seen_bytes_dense"),
            round_two_us: t.histogram("routing", "round_two_us"),
        }
    }
}

/// The per-node quorum routing state machine, generic over its link-state
/// store (default: the sparse [`RowStore`]).
pub struct QuorumRouter<S: LinkStateStore = RowStore> {
    me: usize,
    n: usize,
    grid: Grid,
    view: u32,
    round: u32,
    config: ProtocolConfig,
    table: S,
    own_row: Vec<LinkEntry>,
    /// Cached: my default rendezvous servers (grid row + column).
    my_servers: Vec<usize>,
    /// Latest accepted recommendation per destination.
    routes: Vec<Option<RouteEntry>>,
    /// `rec_seen[s]` — last time server `s` recommended any route for a
    /// destination, as a sparse map keyed by destination (absent key =
    /// no recommendation yet). Only the `~2√n` servers that actually
    /// send recommendations hold entries, and each holds only the
    /// destinations it has vouched for — `O(√n · √n)` entries total
    /// versus the `n` slots per server a dense row would burn.
    rec_seen: Vec<BTreeMap<usize, f64>>,
    /// When I first sent link state to each server (grace-period
    /// anchor); grid-indexed, [`NEVER`] = never served.
    serving_since: Vec<f64>,
    /// Per-destination failover machinery.
    failover: Vec<FailoverState>,
    /// My row's sequence number: 0 until the first retraction event
    /// (frames stay bit-identical to the legacy format), then bumped on
    /// every tick that withdraws at least one link, so receivers'
    /// replay guards and feasibility resets key off it.
    own_seqno: u16,
    /// Links withdrawn recently: destination → round of withdrawal.
    /// Advertised in the link-state retraction lane for a few rounds,
    /// dropped as soon as the link recovers.
    retractions: BTreeMap<u16, u32>,
    /// The route discipline for k-hop detour splicing (section 4.2
    /// generalized): per-destination feasibility distances and the
    /// detour-layer telemetry.
    feasibility: FeasibilityTable,
    /// Registry-backed event counters (see [`QuorumMetrics`]).
    counters: RouterCounters,
    tracer: Tracer,
    /// Episode context adopted at view install: the next few row
    /// imports record `RowImport` spans under it (bounded so a noisy
    /// store cannot spam the flight recorder), then it clears.
    trace_ctx: Option<(TraceCtx, u32)>,
}

impl QuorumRouter<RowStore> {
    /// A quorum router for node `me` under membership `view` of size `n`,
    /// backed by the sparse row store with the `O(√n)` entitlement guard
    /// (stale rows are shed under capacity pressure — see
    /// [`RowStore::with_entitlement`]).
    #[must_use]
    pub fn new(me: usize, n: usize, view: u32, config: ProtocolConfig) -> Self {
        let store = RowStore::with_entitlement(n, Self::row_entitlement(n), config.staleness_s());
        Self::with_store(me, n, view, config, store)
    }

    /// [`QuorumRouter::new`] with both the router counters and the
    /// backing [`RowStore`] registered against a live `telemetry`.
    #[must_use]
    pub fn new_with_telemetry(
        me: usize,
        n: usize,
        view: u32,
        config: ProtocolConfig,
        telemetry: &Telemetry,
    ) -> Self {
        let store = RowStore::with_entitlement(n, Self::row_entitlement(n), config.staleness_s())
            .with_telemetry(telemetry.clone());
        Self::with_store(me, n, view, config, store).with_telemetry(telemetry)
    }

    /// The debug-asserted bound on *fresh* rows a quorum node may hold:
    /// its own row, its `≤ 2·max(rows, cols)` rendezvous clients, plus
    /// slack for transient failover clients (nodes that selected us as
    /// a failover rendezvous and sent us their link state).
    #[must_use]
    pub fn row_entitlement(n: usize) -> usize {
        let grid = Grid::new(n.max(1));
        2 * grid.max_rendezvous_degree() + 16
    }
}

impl<S: LinkStateStore> QuorumRouter<S> {
    /// A quorum router over an explicit store (the scale experiments use
    /// this to run the identical protocol over the dense baseline).
    ///
    /// # Panics
    /// Panics if `me ≥ n` or the store covers a different `n`.
    #[must_use]
    pub fn with_store(me: usize, n: usize, view: u32, config: ProtocolConfig, table: S) -> Self {
        assert!(me < n);
        assert_eq!(table.len(), n, "store must cover n nodes");
        let grid = Grid::new(n);
        let my_servers = grid.rendezvous_servers(me);
        QuorumRouter {
            me,
            n,
            grid,
            view,
            round: 0,
            config,
            table,
            own_row: vec![LinkEntry::dead(); n],
            my_servers,
            routes: vec![None; n],
            rec_seen: vec![BTreeMap::new(); n],
            serving_since: vec![NEVER; n],
            failover: vec![FailoverState::default(); n],
            own_seqno: 0,
            retractions: BTreeMap::new(),
            feasibility: FeasibilityTable::new(),
            counters: RouterCounters::new(&Telemetry::disabled()),
            tracer: Tracer::disabled(),
            trace_ctx: None,
        }
    }

    /// Attach a live telemetry registry: the counters and the `rec_seen`
    /// byte gauges re-register against `telemetry`. Counts recorded on
    /// the previous (default: disabled) registry are left behind, but
    /// re-attaching the same registry — e.g. when a view change rebuilds
    /// the router — resumes its cumulative cells. The link-state store
    /// keeps its own registration — build it via
    /// [`RowStore::with_telemetry`] and [`QuorumRouter::with_store`]
    /// (or [`QuorumRouter::new_with_telemetry`]) to instrument both.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.counters = RouterCounters::new(telemetry);
        self.feasibility = FeasibilityTable::with_telemetry(telemetry);
        self
    }

    /// Attach a causal tracer (disabled by default; see
    /// [`QuorumRouter::note_episode`]).
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Mark upcoming row imports as part of a convergence episode: the
    /// next few accepted rows record `RowImport` spans under `ctx`
    /// before the context clears itself.
    pub fn note_episode(&mut self, ctx: TraceCtx) {
        if self.tracer.enabled() {
            // Enough for the post-remap import wave (~2√n clients) at
            // experiment scales without letting steady-state traffic
            // spam the recorder.
            self.trace_ctx = Some((ctx, 32));
        }
    }

    /// The grid this router derives its quorum from.
    #[must_use]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The link-state store (for inspection).
    #[must_use]
    pub fn table(&self) -> &S {
        &self.table
    }

    /// Event counters, reconstructed from the registry-backed cells.
    #[must_use]
    pub fn metrics(&self) -> QuorumMetrics {
        QuorumMetrics {
            failovers_selected: self.counters.failovers_selected.get(),
            ls_sent: self.counters.ls_sent.get(),
            recs_sent: self.counters.recs_sent.get(),
            rec_entries_received: self.counters.rec_entries_received.get(),
        }
    }

    /// Estimated heap bytes of the sparse `rec_seen` state, and what the
    /// dense pre-compaction layout would cost for the same coverage.
    #[must_use]
    pub fn rec_seen_bytes(&self) -> (u64, u64) {
        let entries: usize = self.rec_seen.iter().map(BTreeMap::len).sum();
        let active = self.rec_seen.iter().filter(|m| !m.is_empty()).count();
        let sparse = (entries * 16) as u64;
        let dense = (active * self.n * 8) as u64;
        (sparse, dense)
    }

    fn update_rec_seen_gauges(&self) {
        let (sparse, dense) = self.rec_seen_bytes();
        self.counters.rec_seen_bytes.set(sparse);
        self.counters.rec_seen_bytes_dense.set(dense);
    }

    /// The route-discipline state (feasibility distances, detour
    /// telemetry).
    #[must_use]
    pub fn feasibility(&self) -> &FeasibilityTable {
        &self.feasibility
    }

    /// My row's current sequence number (0 = no retraction event yet).
    #[must_use]
    pub fn own_seqno(&self) -> u16 {
        self.own_seqno
    }

    /// Decide how to forward towards `dst` right now.
    ///
    /// Preference order: a fresh recommendation over a live first leg,
    /// then the §4.2 1-hop scavenge (direct link included), then — only
    /// when configured past the paper's 1-hop behaviour and everything
    /// above is gone — a feasibility-gated spliced detour, which is
    /// source-routed (see [`RouteDecision`]).
    #[must_use]
    pub fn route_decision(&self, dst: usize, now: f64) -> Option<RouteDecision> {
        if dst == self.me || dst >= self.n {
            return None;
        }
        // Fresh recommendation wins — but only over a live first leg: a
        // hop my own probes have since declared dead cannot forward, so
        // a stale recommendation no longer shadows the scavenge paths.
        if let Some(r) = self.routes[dst] {
            if now - r.received_at <= self.config.route_expiry_s() && self.own_row[r.hop].alive {
                return Some(RouteDecision::Hop(r.hop));
            }
        }
        // §4.2: scavenge from the neighbour tables we already hold.
        let max_age = self.config.staleness_s();
        let direct = if self.own_row[dst].alive {
            self.own_row[dst].cost()
        } else {
            f64::INFINITY
        };
        let mut best = (dst, direct);
        for (h, c) in self.table.one_hop_options(self.me, dst, now, max_age) {
            if c < best.1 {
                best = (h, c);
            }
        }
        if best.1.is_finite() {
            return Some(RouteDecision::Hop(best.0));
        }
        // The generalized scavenge: splice a feasibility-checked k-hop
        // detour from the live rows. Off unless configured past the
        // paper's 1-hop behaviour, and only reached when both the
        // recommendation and every 1-hop option are gone — never on the
        // steady-state hot path.
        if self.config.max_detour_hops > 1 {
            if let Some(d) = select_detour(
                &self.table,
                &self.feasibility,
                self.me,
                dst,
                self.config.max_detour_hops,
                now,
                max_age,
            ) {
                return Some(RouteDecision::Spliced(d));
            }
        }
        None
    }

    /// The next seqno after `s`, skipping the unversioned sentinel 0.
    fn next_seqno(s: u16) -> u16 {
        let n = s.wrapping_add(1);
        if n == 0 {
            1
        } else {
            n
        }
    }

    /// Withdraw my link to `dst`: record the retraction (bumping my
    /// seqno on the transition) and mark the route infeasible until the
    /// destination announces a newer seqno. The prober calls this the
    /// moment its 5-failure rule declares the link dead, so retraction
    /// propagates a routing tick earlier than the own-row refresh
    /// would.
    pub fn on_link_loss(&mut self, dst: usize, now: f64) {
        if dst >= self.n || dst == self.me {
            return;
        }
        if self.retractions.insert(dst as u16, self.round).is_none() {
            self.own_seqno = Self::next_seqno(self.own_seqno);
        }
        self.feasibility.retract(dst, self.table.row_seqno(dst));
        self.own_row[dst] = LinkEntry::dead();
        self.table
            .update_entry(self.me, dst, LinkEntry::dead(), now);
    }

    /// Retract (rather than silently drop) every established route that
    /// cannot carry into a new membership view: destinations or
    /// recommended hops whose identity `survives` rejects. Called on
    /// the *outgoing* router during view install; the counts land in
    /// the shared `routing/routes_retracted` cell. Returns how many
    /// routes were withdrawn.
    pub fn retract_departed_routes(&mut self, survives: &dyn Fn(usize) -> bool) -> usize {
        let mut count = 0;
        for dst in 0..self.n {
            if let Some(r) = self.routes[dst] {
                if !survives(dst) || !survives(r.hop) {
                    self.feasibility.retract(dst, self.table.row_seqno(dst));
                    self.routes[dst] = None;
                    count += 1;
                }
            }
        }
        count
    }

    /// The retraction lane advertised this round, ascending.
    fn retraction_lane(&self) -> Vec<u16> {
        self.retractions.keys().copied().collect()
    }

    /// Record a `RowImport` span when a view-install episode context is
    /// armed (see [`QuorumRouter::note_episode`]); budget-bounded.
    fn trace_row_import(&mut self, origin: usize, received_at: f64) {
        if let Some((ctx, budget)) = self.trace_ctx {
            #[allow(clippy::cast_possible_truncation)]
            self.tracer.instant(
                SpanKind::RowImport,
                ctx.episode,
                0,
                origin as u32,
                received_at,
            );
            self.trace_ctx = if budget > 1 {
                Some((ctx, budget - 1))
            } else {
                None
            };
        }
    }

    /// React to an *accepted* versioned row from `from`: a nonzero seqno
    /// releases feasibility constraints keyed to older ones, and every
    /// destination the row explicitly retracts is withdrawn if this node
    /// was routing to it *through* `from` (the first leg just vanished).
    fn note_row_version(&mut self, from: usize, seqno: u16, retractions: &[u16]) {
        if seqno != 0 {
            self.feasibility.note_seqno(from, seqno);
        }
        for &r in retractions {
            let dst = usize::from(r);
            if dst >= self.n || dst == self.me {
                continue;
            }
            if self.routes[dst].is_some_and(|e| e.hop == from) {
                self.routes[dst] = None;
                self.feasibility.retract(dst, self.table.row_seqno(dst));
            }
        }
    }

    /// The latest recommendation stored for `dst`.
    #[must_use]
    pub fn route_entry(&self, dst: usize) -> Option<RouteEntry> {
        self.routes[dst]
    }

    /// The currently active failover server for `dst`, if any.
    #[must_use]
    pub fn active_failover(&self, dst: usize) -> Option<usize> {
        self.failover[dst].current
    }

    /// Last time server `s` recommended any route to `dst`.
    fn last_rec(&self, s: usize, dst: usize) -> Option<f64> {
        self.rec_seen[s].get(&dst).copied()
    }

    /// Has rendezvous server `s` failed *for destination `dst`*, judged at
    /// `now`? Covers proximal failures (my link to `s` is dead), remote
    /// failures (`s` stopped recommending `dst`), and the degenerate cases
    /// where `s` is me or the destination itself.
    fn server_failed(&self, s: usize, dst: usize, now: f64) -> bool {
        if s == self.me {
            // I am my own rendezvous for same-row/column destinations; I
            // have "failed" when I no longer hold fresh link state for dst.
            return !self.table.row_fresh(dst, now, self.config.staleness_s());
        }
        if s == dst {
            // The destination can only vouch for itself over a live link.
            return !self.own_row[s].alive;
        }
        // Proximal rendezvous failure.
        if !self.own_row[s].alive {
            return true;
        }
        // Remote rendezvous failure: no recommendation for dst recently.
        let since = self.serving_since[s];
        if since == NEVER {
            // Never even sent them link state yet — not failed, just young.
            return false;
        }
        let anchor = self
            .last_rec(s, dst)
            .unwrap_or(since + self.config.server_grace_s() - self.config.remote_failure_s());
        now - anchor > self.config.remote_failure_s()
    }

    fn both_defaults_failed(&self, dst: usize, now: f64) -> bool {
        if dst == self.me {
            return false;
        }
        // Derived from the grid on demand: caching the pair per
        // destination costs O(n) Vecs per node — measurable at n = 4096 —
        // for an O(1) position computation.
        let pair = self.grid.default_rendezvous_pair(self.me, dst);
        !pair.is_empty() && pair.iter().all(|&s| self.server_failed(s, dst, now))
    }

    /// Run the section 4.1 failover state machine for every destination;
    /// returns servers newly selected this tick (they get link state
    /// immediately).
    fn manage_failovers(&mut self, now: f64, rng: &mut ChaCha8Rng) -> Vec<usize> {
        let mut newly_selected = Vec::new();
        for dst in 0..self.n {
            if dst == self.me {
                continue;
            }
            // Reversion: a working default rendezvous ends the episode.
            if !self.both_defaults_failed(dst, now) {
                let st = &mut self.failover[dst];
                st.current = None;
                st.tried.clear();
                st.gave_up = false;
                continue;
            }
            // Double rendezvous failure. Is the current failover healthy?
            if let Some(f) = self.failover[dst].current {
                if !self.server_failed(f, dst, now) {
                    continue;
                }
                self.failover[dst].tried.insert(f);
                self.failover[dst].current = None;
            }
            // Dead-destination suppression: after the first attempt, only
            // continue while someone's table still reaches dst.
            let attempted_before = !self.failover[dst].tried.is_empty();
            if attempted_before {
                let reachable = self
                    .table
                    .anyone_reaches(dst, now, self.config.staleness_s())
                    || self.own_row[dst].alive;
                if !reachable {
                    self.failover[dst].gave_up = true;
                    continue;
                }
            }
            self.failover[dst].gave_up = false;

            // Pick a failover uniformly at random from dst's reachable
            // row/column, excluding already-tried candidates. Candidates
            // are derived from the grid on demand — caching them per
            // destination would be O(n√n) aux state per node for a path
            // that only runs under double failures.
            let pool: Vec<usize> = self
                .grid
                .failover_candidates(dst)
                .into_iter()
                .filter(|&c| c != self.me && c != dst)
                .filter(|&c| self.own_row[c].alive)
                .filter(|c| !self.failover[dst].tried.contains(c))
                .collect();
            if pool.is_empty() {
                // Exhausted: restart the episode so candidates that have
                // recovered become eligible again.
                self.failover[dst].tried.clear();
                continue;
            }
            let f = *pool.choose(rng).expect("non-empty pool");
            self.failover[dst].current = Some(f);
            self.failover[dst].tried.insert(f);
            self.counters.failovers_selected.inc();
            newly_selected.push(f);
        }
        newly_selected.sort_unstable();
        newly_selected.dedup();
        newly_selected
    }

    fn linkstate_msg(&self, to: usize, now: f64) -> Message {
        // Sparse encoding pays off once the live-entry count k satisfies
        // 23 + 5k < 21 + 3n, i.e. k < (3n − 2)/5. Under entitled probing
        // a row holds O(√n) live entries and this always wins; fully-live
        // rows (the full-mesh probing baseline) keep the dense format, so
        // the section 6 bandwidth formulas stay byte-exact.
        let live = self.own_row.iter().filter(|e| e.alive).count();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        if 5 * live < 3 * self.n - 2 {
            let entries: Vec<(u16, LinkEntry)> = self
                .own_row
                .iter()
                .enumerate()
                .filter(|(_, e)| e.alive)
                .map(|(dst, e)| (dst as u16, *e))
                .collect();
            Message::LinkStateSparse(SparseLinkStateMsg {
                from: NodeId::from_index(self.me),
                to: NodeId::from_index(to),
                view: self.view,
                round: self.round,
                basis_ms: (now * 1000.0) as u32,
                width: self.n as u16,
                entries,
                seqno: self.own_seqno,
                retractions: self.retraction_lane(),
            })
        } else {
            Message::LinkState(LinkStateMsg {
                from: NodeId::from_index(self.me),
                to: NodeId::from_index(to),
                view: self.view,
                round: self.round,
                basis_ms: (now * 1000.0) as u32,
                entries: self.own_row.clone(),
                seqno: self.own_seqno,
                retractions: self.retraction_lane(),
            })
        }
    }

    /// The set of servers that receive my link state this round: defaults
    /// plus all active failovers.
    fn current_servers(&self) -> Vec<usize> {
        let mut servers = self.my_servers.clone();
        for st in &self.failover {
            if let Some(f) = st.current {
                servers.push(f);
            }
        }
        servers.sort_unstable();
        servers.dedup();
        servers.retain(|&s| s != self.me);
        servers
    }

    /// Round two, as a rendezvous server: recommendations for each fresh
    /// client about every other fresh client (and about me). With the
    /// sparse store, enumerating clients scans the `O(√n)` held rows
    /// instead of all `n` indices.
    fn compute_recommendations(&mut self, now: f64) -> Vec<Message> {
        let started = std::time::Instant::now();
        let max_age = self.config.staleness_s();
        let mut clients: Vec<usize> = self
            .table
            .present_rows()
            .into_iter()
            .filter(|&c| c != self.me)
            .filter(|&c| self.table.row_fresh(c, now, max_age))
            .collect();
        // I count as a destination for my clients (my row is always fresh).
        let mut msgs = Vec::new();
        let dests_base = {
            let mut d = clients.clone();
            d.push(self.me);
            d
        };
        clients.sort_unstable();
        for &c in &clients {
            // One batch call per client: the client's first-leg row is
            // resolved once and swept once per destination, instead of
            // re-fetched per (client, destination) pair.
            let hops = self.table.best_hops_batch(c, &dests_base, now, max_age);
            let mut recs = Vec::with_capacity(dests_base.len());
            for (&d, hop) in dests_base.iter().zip(hops) {
                if let Some((hop, cost)) = hop {
                    recs.push(RecEntry {
                        dst: NodeId::from_index(d),
                        hop: NodeId::from_index(hop),
                        cost_ms: LinkEntry::quantize_latency(cost),
                    });
                }
            }
            if recs.is_empty() {
                continue;
            }
            self.counters.recs_sent.inc();
            msgs.push(Message::Recommendations(RecommendationMsg {
                from: NodeId::from_index(self.me),
                to: NodeId::from_index(c),
                view: self.view,
                round: self.round,
                basis_ms: (now * 1000.0) as u32,
                format: self.config.rec_format,
                recs,
            }));
        }
        // Wall-clock only feeds the histogram — routing stays a pure
        // function of (time, messages), so deterministic replay holds.
        #[allow(clippy::cast_possible_truncation)]
        self.counters
            .round_two_us
            .observe((started.elapsed().as_micros() as u64).max(1));
        msgs
    }
}

impl<S: LinkStateStore> RoutingAlgorithm for QuorumRouter<S> {
    fn on_routing_tick(
        &mut self,
        now: f64,
        own_row: &[LinkEntry],
        rng: &mut ChaCha8Rng,
    ) -> Vec<Message> {
        assert_eq!(own_row.len(), self.n);
        self.round += 1;
        // Route discipline bookkeeping: diff the fresh row against the
        // previous one. Newly dead links become retraction events (my
        // seqno bumps once per tick that has any), recovered links leave
        // the lane immediately, and stale lane entries age out after a
        // few rounds of advertisement.
        let mut new_deaths = false;
        for dst in 0..self.n {
            if dst == self.me {
                continue;
            }
            if own_row[dst].alive {
                self.retractions.remove(&(dst as u16));
            } else if self.own_row[dst].alive
                && self.retractions.insert(dst as u16, self.round).is_none()
            {
                new_deaths = true;
            }
        }
        if new_deaths {
            self.own_seqno = Self::next_seqno(self.own_seqno);
        }
        let round = self.round;
        self.retractions.retain(|_, r| round - *r < 3);
        self.own_row.copy_from_slice(own_row);
        let lane = self.retraction_lane();
        self.table
            .update_row_versioned(self.me, own_row, self.own_seqno, &lane, now);
        // Acting on a live direct link ratchets that destination's
        // feasibility distance: a detour must strictly beat what this
        // node can already do on its own.
        for dst in 0..self.n {
            if dst != self.me && own_row[dst].alive {
                self.feasibility
                    .advance(dst, self.table.row_seqno(dst), own_row[dst].cost());
            }
        }

        // Section 4.1 failover management happens before round one so a
        // freshly selected failover gets link state in this very tick.
        let _newly = self.manage_failovers(now, rng);

        let mut msgs = Vec::new();
        // Round one: link state to all current servers.
        for s in self.current_servers() {
            if self.serving_since[s] == NEVER {
                self.serving_since[s] = now;
            }
            self.counters.ls_sent.inc();
            msgs.push(self.linkstate_msg(s, now));
        }
        // Round two: recommendations to all fresh clients.
        msgs.extend(self.compute_recommendations(now));
        msgs
    }

    fn on_message(&mut self, now: f64, msg: &Message) -> Vec<Message> {
        match msg {
            Message::LinkState(ls) => {
                let from = ls.from.index();
                if ls.view == self.view
                    && ls.entries.len() == self.n
                    && from < self.n
                    && from != self.me
                    && self.table.update_row_versioned(
                        from,
                        &ls.entries,
                        ls.seqno,
                        &ls.retractions,
                        now,
                    )
                {
                    self.note_row_version(from, ls.seqno, &ls.retractions);
                }
                Vec::new()
            }
            Message::LinkStateSparse(ls) => {
                let from = ls.from.index();
                if ls.view == self.view
                    && usize::from(ls.width) == self.n
                    && from < self.n
                    && from != self.me
                    && self.table.update_row_sparse_versioned(
                        from,
                        &ls.entries,
                        ls.seqno,
                        &ls.retractions,
                        now,
                    )
                {
                    self.note_row_version(from, ls.seqno, &ls.retractions);
                }
                Vec::new()
            }
            Message::Recommendations(rm) => {
                let server = rm.from.index();
                if rm.view != self.view || server >= self.n {
                    return Vec::new();
                }
                for rec in &rm.recs {
                    let dst = rec.dst.index();
                    let hop = rec.hop.index();
                    if dst >= self.n || hop >= self.n || dst == self.me {
                        continue;
                    }
                    self.rec_seen[server].insert(dst, now);
                    self.counters.rec_entries_received.inc();
                    let newer = self.routes[dst].is_none_or(|r| now >= r.received_at);
                    if newer {
                        self.routes[dst] = Some(RouteEntry {
                            hop,
                            from_server: server,
                            received_at: now,
                            cost_ms: rec.cost_ms,
                        });
                        // Acting on a costed recommendation ratchets the
                        // feasibility distance (the compact format carries
                        // no cost and leaves the constraint untouched).
                        if rec.cost_ms != u16::MAX {
                            self.feasibility.advance(
                                dst,
                                self.table.row_seqno(dst),
                                f64::from(rec.cost_ms),
                            );
                        }
                    }
                }
                self.update_rec_seen_gauges();
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    fn best_hop(&self, dst: usize, now: f64) -> Option<usize> {
        self.route_decision(dst, now).map(|d| d.first_hop())
    }

    fn route_age(&self, dst: usize, now: f64) -> Option<f64> {
        self.routes[dst].map(|r| now - r.received_at)
    }

    fn double_rendezvous_failures(&self, now: f64) -> usize {
        (0..self.n)
            .filter(|&dst| dst != self.me)
            .filter(|&dst| self.both_defaults_failed(dst, now))
            .count()
    }

    fn export_rows(&self) -> Vec<(usize, f64, Vec<LinkEntry>)> {
        self.table
            .present_rows()
            .into_iter()
            .filter_map(|origin| {
                let time = self.table.row_time(origin)?;
                Some((origin, time, self.table.row_dense(origin)?))
            })
            .collect()
    }

    fn import_row(&mut self, origin: usize, entries: &[LinkEntry], received_at: f64) {
        if origin >= self.n || entries.len() != self.n {
            return;
        }
        // Entitlement: only keep rows this node's grid role grants it —
        // its own row and its rendezvous clients'. Rows from origins
        // that are no longer clients after the view change are dropped
        // rather than remapped, keeping state O(n√n).
        if origin != self.me && !self.grid.serves(origin, self.me) {
            return;
        }
        self.table.update_row(origin, entries, received_at);
        self.trace_row_import(origin, received_at);
    }

    fn export_rows_versioned(&self) -> Vec<VersionedRow> {
        self.table
            .present_rows()
            .into_iter()
            .filter_map(|origin| {
                let received_at = self.table.row_time(origin)?;
                Some(VersionedRow {
                    origin,
                    received_at,
                    seqno: self.table.row_seqno(origin),
                    retractions: self.table.row_retractions(origin),
                    entries: self.table.row_dense(origin)?,
                })
            })
            .collect()
    }

    fn import_row_versioned(&mut self, row: &VersionedRow) {
        if row.origin >= self.n || row.entries.len() != self.n {
            return;
        }
        // Same entitlement rule as the unversioned import.
        if row.origin != self.me && !self.grid.serves(row.origin, self.me) {
            return;
        }
        self.table.update_row_versioned(
            row.origin,
            &row.entries,
            row.seqno,
            &row.retractions,
            row.received_at,
        );
        self.trace_row_import(row.origin, row.received_at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apor_linkstate::LinkStateTable;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(12345)
    }

    /// A tiny synchronous fabric: run all routers' ticks, deliver all
    /// messages instantly (optionally dropping some links).
    struct Fabric {
        routers: Vec<QuorumRouter>,
        rng: ChaCha8Rng,
        /// Link filter: `false` ⇒ messages on (from, to) are dropped.
        link_up: Box<dyn Fn(usize, usize) -> bool>,
    }

    impl Fabric {
        fn new(n: usize, cfg: &ProtocolConfig) -> Self {
            Fabric {
                routers: (0..n)
                    .map(|i| QuorumRouter::new(i, n, 0, cfg.clone()))
                    .collect(),
                rng: rng(),
                link_up: Box::new(|_, _| true),
            }
        }

        /// One routing interval for everyone. `rows[i]` is node i's own row.
        fn tick(&mut self, now: f64, rows: &[Vec<LinkEntry>]) {
            let mut inbox: Vec<Message> = Vec::new();
            for (i, r) in self.routers.iter_mut().enumerate() {
                inbox.extend(r.on_routing_tick(now, &rows[i], &mut self.rng));
            }
            // Deliver, collecting any immediate responses (failover LS).
            let mut queue = inbox;
            while let Some(m) = queue.pop() {
                let (f, t) = (m.from().index(), m.to().index());
                if !(self.link_up)(f, t) {
                    continue;
                }
                queue.extend(self.routers[t].on_message(now + 0.01, &m));
            }
        }
    }

    /// Symmetric rows from a cost matrix; `u16::MAX` ⇒ dead link.
    fn rows_from(costs: &[&[u16]]) -> Vec<Vec<LinkEntry>> {
        costs
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&c| {
                        if c == u16::MAX {
                            LinkEntry::dead()
                        } else {
                            LinkEntry::live(c, 0.0)
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// A 9-node world (3×3 grid, figure 2) where the direct path 0→8 is
    /// expensive and node 4 is the best relay for everyone.
    fn nine_node_rows() -> Vec<Vec<LinkEntry>> {
        let n = 9;
        let mut costs = vec![vec![0u16; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    costs[i][j] = 100;
                }
            }
        }
        // Node 4 is a hub: cheap to everyone.
        for i in 0..n {
            if i != 4 {
                costs[i][4] = 10;
                costs[4][i] = 10;
            }
        }
        // 0↔8 is terrible.
        costs[0][8] = 400;
        costs[8][0] = 400;
        let refs: Vec<&[u16]> = costs.iter().map(|r| r.as_slice()).collect();
        rows_from(&refs)
    }

    /// After two routing intervals every node must know the optimal
    /// one-hop route to every destination (Theorem 1 made operational).
    #[test]
    fn two_rounds_find_all_optimal_one_hops() {
        let cfg = ProtocolConfig::quorum();
        let mut fabric = Fabric::new(9, &cfg);
        let rows = nine_node_rows();
        fabric.tick(0.0, &rows);
        fabric.tick(15.0, &rows);
        // 0's best hop to 8 is via the hub 4 (10 + 10 = 20 vs 400 direct).
        assert_eq!(fabric.routers[0].best_hop(8, 16.0), Some(4));
        assert_eq!(fabric.routers[8].best_hop(0, 16.0), Some(4));
        // All pairs: either the direct 100 (via hub = 20 — hub wins), so
        // everyone should route via 4, except pairs involving 4.
        for i in 0..9 {
            for j in 0..9 {
                if i == j {
                    continue;
                }
                let hop = fabric.routers[i].best_hop(j, 16.0).expect("route known");
                if i == 4 || j == 4 {
                    assert_eq!(hop, j, "adjacent to hub: direct is optimal");
                } else {
                    assert_eq!(hop, 4, "{i}→{j} should relay via hub");
                }
            }
        }
    }

    /// `rec_seen` holds entries only for (server, dst) pairs that were
    /// actually recommended, and the byte gauges report the sparse
    /// layout as strictly cheaper than the dense one it replaced.
    #[test]
    fn rec_seen_is_sparse_and_gauged() {
        let telemetry = Telemetry::new(3);
        let cfg = ProtocolConfig::quorum();
        let n = 9;
        let mut fabric = Fabric::new(n, &cfg);
        fabric.routers[3] = QuorumRouter::new_with_telemetry(3, n, 0, cfg.clone(), &telemetry);
        let rows = nine_node_rows();
        fabric.tick(0.0, &rows);
        fabric.tick(15.0, &rows);

        let r = &fabric.routers[3];
        let servers_with_entries = r.rec_seen.iter().filter(|m| !m.is_empty()).count();
        let total_entries: usize = r.rec_seen.iter().map(BTreeMap::len).sum();
        // Only my ~2√n rendezvous servers recommend to me, about n-1
        // destinations each — nowhere near the n² dense worst case.
        assert!(servers_with_entries > 0);
        assert!(servers_with_entries <= r.grid().max_rendezvous_degree() * 2 + 1);
        assert!(total_entries <= servers_with_entries * (n - 1));
        for (s, m) in r.rec_seen.iter().enumerate() {
            for &dst in m.keys() {
                assert!(r.last_rec(s, dst).is_some());
                assert_ne!(dst, 3, "never records recs about myself");
            }
        }

        let (sparse, dense) = r.rec_seen_bytes();
        assert!(
            sparse > 0 && sparse < dense,
            "sparse {sparse} vs dense {dense}"
        );
        let snap = telemetry.snapshot();
        assert_eq!(snap.gauge(3, "routing", "rec_seen_bytes"), Some(sparse));
        assert_eq!(
            snap.gauge(3, "routing", "rec_seen_bytes_dense"),
            Some(dense)
        );
        assert_eq!(
            snap.counter(3, "routing", "rec_entries_received"),
            Some(r.metrics().rec_entries_received)
        );
        assert!(snap.counter(3, "routing", "ls_sent").unwrap_or(0) > 0);
    }

    /// The sparse store and the dense baseline run the identical
    /// protocol: swapping stores changes no routing decision.
    #[test]
    fn dense_store_reaches_identical_routes() {
        let cfg = ProtocolConfig::quorum();
        let n = 9;
        let rows = nine_node_rows();
        let mut dense: Vec<QuorumRouter<LinkStateTable>> = (0..n)
            .map(|i| QuorumRouter::with_store(i, n, 0, cfg.clone(), LinkStateTable::new(n)))
            .collect();
        let mut g = rng();
        for t in [0.0, 15.0] {
            let mut queue: Vec<Message> = Vec::new();
            for (i, r) in dense.iter_mut().enumerate() {
                queue.extend(r.on_routing_tick(t, &rows[i], &mut g));
            }
            while let Some(m) = queue.pop() {
                let to = m.to().index();
                queue.extend(dense[to].on_message(t + 0.01, &m));
            }
        }
        let mut sparse = Fabric::new(n, &cfg);
        sparse.tick(0.0, &rows);
        sparse.tick(15.0, &rows);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    assert_eq!(
                        dense[i].best_hop(j, 16.0),
                        sparse.routers[i].best_hop(j, 16.0),
                        "{i}→{j}"
                    );
                }
            }
        }
    }

    /// A mostly-dead own row (the entitled-probing shape) rides the
    /// sparse wire format, and the receiver reconstructs the identical
    /// row; fully-live rows keep the dense format so the section 6
    /// bandwidth formulas stay byte-exact.
    #[test]
    fn sparse_rows_use_sparse_wire_format() {
        let cfg = ProtocolConfig::quorum();
        let n = 100;
        let mut sender = QuorumRouter::new(3, n, 0, cfg.clone());
        // Live entries only to self and a handful of peers — the shape
        // entitled probing produces.
        let mut own = vec![LinkEntry::dead(); n];
        own[3] = LinkEntry::live(0, 0.0);
        for &j in &[7usize, 13, 23, 43, 53] {
            own[j] = LinkEntry::live(20 + j as u16, 0.0);
        }
        let mut g = rng();
        let msgs = sender.on_routing_tick(0.0, &own, &mut g);
        let mut saw_sparse = false;
        let mut receiver = QuorumRouter::new(13, n, 0, cfg.clone());
        for m in &msgs {
            match m {
                Message::LinkStateSparse(sm) => {
                    saw_sparse = true;
                    assert_eq!(usize::from(sm.width), n);
                    assert!(sm.entries.iter().all(|(_, e)| e.alive));
                    if sm.to.index() == 13 {
                        let _ = receiver.on_message(0.5, m);
                    }
                }
                Message::LinkState(_) => panic!("sparse row must not go dense"),
                _ => {}
            }
        }
        assert!(saw_sparse, "round one emits sparse link state");
        assert_eq!(
            receiver.table().row_dense(3).expect("row stored"),
            own,
            "receiver reconstructs the identical row"
        );

        // Fully-live rows stay dense.
        let full: Vec<LinkEntry> = (0..n).map(|_| LinkEntry::live(10, 0.0)).collect();
        let msgs = sender.on_routing_tick(15.0, &full, &mut g);
        assert!(msgs
            .iter()
            .all(|m| !matches!(m, Message::LinkStateSparse(_))));
    }

    /// The sparse store only ever holds the rows the node's role grants
    /// it: own row + rendezvous clients — the O(√n) state bound.
    #[test]
    fn steady_state_holds_only_entitled_rows() {
        let cfg = ProtocolConfig::quorum();
        for n in [9usize, 25, 100] {
            let mut fabric = Fabric::new(n, &cfg);
            let row = vec![LinkEntry::live(10, 0.0); n];
            let rows: Vec<Vec<LinkEntry>> = (0..n).map(|_| row.clone()).collect();
            for k in 0..3 {
                fabric.tick(k as f64 * 15.0, &rows);
            }
            for (i, r) in fabric.routers.iter().enumerate() {
                let held = r.table().row_count();
                let entitled = r.grid().rendezvous_clients(i).len() + 1;
                assert_eq!(
                    held, entitled,
                    "n={n}, node {i}: holds {held} rows, entitled to {entitled}"
                );
                assert!(held <= QuorumRouter::row_entitlement(n));
            }
        }
    }

    #[test]
    fn round1_message_complexity_is_2_sqrt_n() {
        let cfg = ProtocolConfig::quorum();
        for n in [9usize, 16, 25, 100, 144] {
            let mut r = QuorumRouter::new(0, n, 0, cfg.clone());
            let row = vec![LinkEntry::live(10, 0.0); n];
            let mut g = rng();
            let msgs = r.on_routing_tick(0.0, &row, &mut g);
            let ls_count = msgs
                .iter()
                .filter(|m| matches!(m, Message::LinkState(_)))
                .count();
            let bound = 2 * (n as f64).sqrt().ceil() as usize;
            assert!(
                ls_count <= bound,
                "n={n}: {ls_count} LS messages > 2√n = {bound}"
            );
            assert!(ls_count >= (n as f64).sqrt() as usize, "suspiciously few");
        }
    }

    #[test]
    fn recommendations_only_flow_to_clients() {
        let cfg = ProtocolConfig::quorum();
        let mut fabric = Fabric::new(9, &cfg);
        let rows = nine_node_rows();
        fabric.tick(0.0, &rows);
        // After one tick node 4 (grid position (1,1)) has clients = its
        // row {3, 5} and column {1, 7}.
        let mut g = rng();
        let msgs = fabric.routers[4].on_routing_tick(15.0, &rows[4], &mut g);
        let rec_targets: Vec<usize> = msgs
            .iter()
            .filter_map(|m| match m {
                Message::Recommendations(r) => Some(r.to.index()),
                _ => None,
            })
            .collect();
        for &t in &rec_targets {
            assert!(
                fabric.routers[4].grid().rendezvous_clients(4).contains(&t),
                "rec sent to non-client {t}"
            );
        }
        assert!(!rec_targets.is_empty());
    }

    #[test]
    fn proximal_failover_selects_new_rendezvous() {
        let cfg = ProtocolConfig::quorum();
        let n = 9;
        // 0's default rendezvous pair towards 8 is {2, 6}. Kill links
        // 0–2 and 0–6 (proximal failures) and the direct 0–8.
        let dead_links: &[(usize, usize)] = &[(0, 2), (0, 6), (0, 8)];
        let mut costs = vec![vec![100u16; n]; n];
        for i in 0..n {
            costs[i][i] = 0;
        }
        for &(a, b) in dead_links {
            costs[a][b] = u16::MAX;
            costs[b][a] = u16::MAX;
        }
        let refs: Vec<&[u16]> = costs.iter().map(|r| r.as_slice()).collect();
        let rows = rows_from(&refs);

        let mut fabric = Fabric::new(n, &cfg);
        let up = move |f: usize, t: usize| {
            !dead_links.contains(&(f, t)) && !dead_links.contains(&(t, f))
        };
        fabric.link_up = Box::new(up);

        for k in 0..6 {
            fabric.tick(k as f64 * 15.0, &rows);
        }
        let now = 80.0;
        // Double failure must have been detected…
        assert!(fabric.routers[0].both_defaults_failed(8, now));
        // …a failover selected from 8's row/column…
        let f = fabric.routers[0]
            .active_failover(8)
            .expect("failover selected");
        assert!(fabric.routers[0].grid().failover_candidates(8).contains(&f));
        // …and a route to 8 recovered through it.
        let hop = fabric.routers[0].best_hop(8, now).expect("route recovered");
        assert_ne!(hop, 8, "direct link is dead; must relay");
        // The route must avoid dead links.
        assert!(up(0, hop) && up(hop, 8), "hop {hop} uses a dead link");
    }

    #[test]
    fn failover_reverts_when_default_recovers() {
        let cfg = ProtocolConfig::quorum();
        let n = 9;
        let mut costs = vec![vec![100u16; n]; n];
        for i in 0..n {
            costs[i][i] = 0;
        }
        let refs: Vec<&[u16]> = costs.iter().map(|r| r.as_slice()).collect();
        let healthy_rows = rows_from(&refs);

        // Phase 1: 0 cannot reach 2 or 6 → failover for dst 8.
        let mut broken = costs.clone();
        for &(a, b) in &[(0usize, 2usize), (0, 6), (0, 8)] {
            broken[a][b] = u16::MAX;
            broken[b][a] = u16::MAX;
        }
        let refs2: Vec<&[u16]> = broken.iter().map(|r| r.as_slice()).collect();
        let broken_rows = rows_from(&refs2);

        let mut fabric = Fabric::new(n, &cfg);
        let dead = [(0usize, 2usize), (0, 6), (0, 8)];
        fabric.link_up = Box::new(move |f, t| !dead.contains(&(f, t)) && !dead.contains(&(t, f)));
        for k in 0..5 {
            fabric.tick(k as f64 * 15.0, &broken_rows);
        }
        assert!(fabric.routers[0].active_failover(8).is_some());

        // Phase 2: everything heals.
        fabric.link_up = Box::new(|_, _| true);
        for k in 5..10 {
            fabric.tick(k as f64 * 15.0, &healthy_rows);
        }
        assert!(
            fabric.routers[0].active_failover(8).is_none(),
            "failover must be dropped once defaults recover"
        );
        assert_eq!(fabric.routers[0].double_rendezvous_failures(10.0 * 15.0), 0);
    }

    #[test]
    fn dead_destination_suppresses_failover_churn() {
        let cfg = ProtocolConfig::quorum();
        let n = 9;
        let mut costs = vec![vec![50u16; n]; n];
        for i in 0..n {
            costs[i][i] = 0;
        }
        // Node 8 is dead: everyone's link to 8 is dead.
        for i in 0..n {
            costs[i][8] = u16::MAX;
            costs[8][i] = u16::MAX;
        }
        let refs: Vec<&[u16]> = costs.iter().map(|r| r.as_slice()).collect();
        let rows = rows_from(&refs);
        let mut fabric = Fabric::new(n, &cfg);
        fabric.link_up = Box::new(|f, t| f != 8 && t != 8);
        for k in 0..12 {
            fabric.tick(k as f64 * 15.0, &rows);
        }
        let m = fabric.routers[0].metrics();
        // A couple of initial attempts are fine; unbounded retry is not.
        assert!(
            m.failovers_selected <= 4,
            "failover churn for dead destination: {}",
            m.failovers_selected
        );
        assert!(fabric.routers[0].best_hop(8, 12.0 * 15.0).is_none());
    }

    #[test]
    fn scavenging_routes_without_recommendations() {
        // §4.2: no recs at all (we never tick the other routers so nobody
        // computes recommendations), but receiving a neighbour's link
        // state row lets us route through it.
        let cfg = ProtocolConfig::quorum();
        let n = 9;
        let mut me = QuorumRouter::new(0, n, 0, cfg.clone());
        let mut own = vec![LinkEntry::live(100, 0.0); n];
        own[0] = LinkEntry::live(0, 0.0);
        own[8] = LinkEntry::dead(); // can't reach 8 directly
        let mut g = rng();
        let _ = me.on_routing_tick(0.0, &own, &mut g);
        // Neighbour 1 says it reaches everyone at 20 ms.
        let row1: Vec<LinkEntry> = (0..n)
            .map(|j| {
                if j == 1 {
                    LinkEntry::live(0, 0.0)
                } else {
                    LinkEntry::live(20, 0.0)
                }
            })
            .collect();
        let _ = me.on_message(
            1.0,
            &Message::LinkState(LinkStateMsg {
                from: NodeId(1),
                to: NodeId(0),
                view: 0,
                round: 1,
                basis_ms: 0,
                entries: row1,
                seqno: 0,
                retractions: vec![],
            }),
        );
        assert_eq!(me.best_hop(8, 2.0), Some(1), "scavenged route via 1");
    }

    /// Two-relay splice helper: node 0 only reaches 1, 1 only reaches 2,
    /// 2 reaches 8 — invisible to 1-hop scavenging, found by k-hop.
    fn chain_to_eight(cfg: ProtocolConfig) -> QuorumRouter {
        let n = 9;
        let mut me = QuorumRouter::new(0, n, 0, cfg);
        let mut own = vec![LinkEntry::dead(); n];
        own[0] = LinkEntry::live(0, 0.0);
        own[1] = LinkEntry::live(10, 0.0);
        let _ = me.on_routing_tick(0.0, &own, &mut rng());
        for (from, reaches) in [(1usize, 2usize), (2, 8)] {
            let row: Vec<LinkEntry> = (0..n)
                .map(|j| {
                    if j == from {
                        LinkEntry::live(0, 0.0)
                    } else if j == reaches || (from == 1 && j == 0) {
                        LinkEntry::live(10, 0.0)
                    } else {
                        LinkEntry::dead()
                    }
                })
                .collect();
            let _ = me.on_message(
                1.0,
                &Message::LinkState(LinkStateMsg {
                    from: NodeId::from_index(from),
                    to: NodeId(0),
                    view: 0,
                    round: 1,
                    basis_ms: 0,
                    entries: row,
                    seqno: 0,
                    retractions: vec![],
                }),
            );
        }
        me
    }

    #[test]
    fn k_hop_detours_recover_where_one_hop_scavenging_fails() {
        // Paper behaviour (1 hop): the chain is invisible.
        let me = chain_to_eight(ProtocolConfig::quorum());
        assert_eq!(me.best_hop(8, 2.0), None, "1-hop scavenge cannot splice");
        // k ≤ 4: the feasible detour 0→1→2→8 is spliced from live rows.
        let me = chain_to_eight(ProtocolConfig::quorum().with_detour_hops(4));
        assert_eq!(me.best_hop(8, 2.0), Some(1), "k-hop detour via 1");
        assert_eq!(me.feasibility().loops_detected(), 0);
    }

    #[test]
    fn route_decision_distinguishes_hops_from_spliced_detours() {
        let me = chain_to_eight(ProtocolConfig::quorum().with_detour_hops(4));
        // A live direct link is a plain hop: relays re-decide.
        match me.route_decision(1, 2.0) {
            Some(RouteDecision::Hop(1)) => {}
            other => panic!("direct link must be Hop(1), got {other:?}"),
        }
        // The chain to 8 needs a splice: the full committed path rides
        // with the decision so the packet can be source-routed.
        match me.route_decision(8, 2.0) {
            Some(RouteDecision::Spliced(d)) => {
                assert_eq!(d.path, vec![0, 1, 2, 8]);
                assert_eq!(d.path[1], me.best_hop(8, 2.0).unwrap());
            }
            other => panic!("chain must be Spliced, got {other:?}"),
        }
        // Out-of-range and self queries decide nothing.
        assert!(me.route_decision(0, 2.0).is_none());
        assert!(me.route_decision(99, 2.0).is_none());
    }

    #[test]
    fn incoming_retractions_withdraw_acted_on_routes() {
        let n = 9;
        let cfg = ProtocolConfig::quorum();
        let mut me = QuorumRouter::new(0, n, 0, cfg);
        let mut own = vec![LinkEntry::dead(); n];
        own[0] = LinkEntry::live(0, 0.0);
        own[4] = LinkEntry::live(10, 0.0);
        let _ = me.on_routing_tick(0.0, &own, &mut rng());
        let _ = me.on_message(
            1.0,
            &Message::Recommendations(RecommendationMsg {
                from: NodeId(2),
                to: NodeId(0),
                view: 0,
                round: 1,
                basis_ms: 0,
                format: apor_linkstate::RecFormat::WithCost,
                recs: vec![RecEntry {
                    dst: NodeId(8),
                    hop: NodeId(4),
                    cost_ms: 30,
                }],
            }),
        );
        assert_eq!(me.best_hop(8, 2.0), Some(4));
        // Node 4 retracts its link to 8 at seqno 2: the route through it
        // is withdrawn, not kept until expiry.
        let row4: Vec<LinkEntry> = (0..n)
            .map(|j| {
                if j == 4 {
                    LinkEntry::live(0, 0.0)
                } else if j == 0 {
                    LinkEntry::live(10, 0.0)
                } else {
                    LinkEntry::dead()
                }
            })
            .collect();
        let _ = me.on_message(
            2.0,
            &Message::LinkState(LinkStateMsg {
                from: NodeId(4),
                to: NodeId(0),
                view: 0,
                round: 2,
                basis_ms: 0,
                entries: row4.clone(),
                seqno: 2,
                retractions: vec![8],
            }),
        );
        assert!(
            me.route_entry(8).is_none(),
            "retraction withdraws the route"
        );
        assert_eq!(me.feasibility().routes_retracted(), 1);
        assert_eq!(me.best_hop(8, 2.5), None);
        // A delayed replay of 4's older row (seqno 1, link to 8 alive)
        // must not resurrect the route.
        let mut stale = row4;
        stale[8] = LinkEntry::live(5, 0.0);
        let _ = me.on_message(
            3.0,
            &Message::LinkState(LinkStateMsg {
                from: NodeId(4),
                to: NodeId(0),
                view: 0,
                round: 1,
                basis_ms: 0,
                entries: stale,
                seqno: 1,
                retractions: vec![],
            }),
        );
        assert_eq!(me.table().row_seqno(4), 2, "stale replay rejected");
        assert!(me.table().row_retracts(4, 8));
        assert_eq!(me.best_hop(8, 3.5), None);
    }

    #[test]
    fn own_link_death_bumps_seqno_and_advertises_retraction() {
        let n = 9;
        let mut me = QuorumRouter::new(0, n, 0, ProtocolConfig::quorum());
        let mut own: Vec<LinkEntry> = (0..n).map(|_| LinkEntry::live(50, 0.0)).collect();
        own[0] = LinkEntry::live(0, 0.0);
        let mut g = rng();
        let msgs = me.on_routing_tick(0.0, &own, &mut g);
        assert_eq!(me.own_seqno(), 0, "no retraction event yet");
        let Some(Message::LinkState(ls)) = msgs.iter().find(|m| matches!(m, Message::LinkState(_)))
        else {
            panic!("expected dense link state");
        };
        assert_eq!((ls.seqno, ls.retractions.as_slice()), (0, &[][..]));
        // Link to 3 dies: seqno bumps once, the lane advertises dst 3.
        own[3] = LinkEntry::dead();
        let msgs = me.on_routing_tick(15.0, &own, &mut g);
        assert_eq!(me.own_seqno(), 1);
        let Some(Message::LinkState(ls)) = msgs.iter().find(|m| matches!(m, Message::LinkState(_)))
        else {
            panic!("expected dense link state");
        };
        assert_eq!((ls.seqno, ls.retractions.as_slice()), (1, &[3u16][..]));
        // The lane ages out after three rounds of advertisement…
        let _ = me.on_routing_tick(30.0, &own, &mut g);
        let _ = me.on_routing_tick(45.0, &own, &mut g);
        let msgs = me.on_routing_tick(60.0, &own, &mut g);
        let Some(Message::LinkState(ls)) = msgs.iter().find(|m| matches!(m, Message::LinkState(_)))
        else {
            panic!("expected dense link state");
        };
        assert_eq!(ls.retractions, Vec::<u16>::new(), "lane aged out");
        assert_eq!(me.own_seqno(), 1, "seqno sticks");
        // …and a recovery drops a fresh lane entry immediately.
        own[5] = LinkEntry::dead();
        let _ = me.on_routing_tick(75.0, &own, &mut g);
        assert_eq!(me.own_seqno(), 2);
        own[5] = LinkEntry::live(50, 0.0);
        let msgs = me.on_routing_tick(90.0, &own, &mut g);
        let Some(Message::LinkState(ls)) = msgs.iter().find(|m| matches!(m, Message::LinkState(_)))
        else {
            panic!("expected dense link state");
        };
        assert_eq!(ls.retractions, Vec::<u16>::new(), "recovered link leaves");
    }

    #[test]
    fn link_loss_hook_and_departure_retraction() {
        let n = 9;
        let mut me = QuorumRouter::new(0, n, 0, ProtocolConfig::quorum());
        let mut own = vec![LinkEntry::dead(); n];
        own[0] = LinkEntry::live(0, 0.0);
        own[4] = LinkEntry::live(10, 0.0);
        own[5] = LinkEntry::live(10, 0.0);
        let _ = me.on_routing_tick(0.0, &own, &mut rng());
        for dst in [7usize, 8] {
            let _ = me.on_message(
                1.0,
                &Message::Recommendations(RecommendationMsg {
                    from: NodeId(2),
                    to: NodeId(0),
                    view: 0,
                    round: 1,
                    basis_ms: 0,
                    format: apor_linkstate::RecFormat::WithCost,
                    recs: vec![RecEntry {
                        dst: NodeId::from_index(dst),
                        hop: NodeId(if dst == 7 { 4 } else { 5 }),
                        cost_ms: 30,
                    }],
                }),
            );
        }
        // Prober-declared loss of the link to 4: seqno bumps out of band.
        me.on_link_loss(4, 2.0);
        assert_eq!(me.own_seqno(), 1);
        assert!(!me.table().entry(0, 4).alive);
        assert_eq!(me.feasibility().routes_retracted(), 1);
        // View change: node 5 does not survive → its route is retracted.
        let retracted = me.retract_departed_routes(&|id| id != 5);
        assert_eq!(retracted, 1);
        assert!(me.route_entry(8).is_none());
        assert!(me.route_entry(7).is_some(), "surviving route kept");
        assert_eq!(me.feasibility().routes_retracted(), 2);
    }

    #[test]
    fn versioned_export_import_preserves_the_replay_guard() {
        // Node 1 is in node 0's grid row, so 0 is entitled to its row in
        // both views.
        let n = 9;
        let mut a = QuorumRouter::new(0, n, 0, ProtocolConfig::quorum());
        let row1: Vec<LinkEntry> = (0..n)
            .map(|j| {
                if j == 1 {
                    LinkEntry::live(0, 0.0)
                } else {
                    LinkEntry::live(10, 0.0)
                }
            })
            .collect();
        let _ = a.on_message(
            1.0,
            &Message::LinkState(LinkStateMsg {
                from: NodeId(1),
                to: NodeId(0),
                view: 0,
                round: 1,
                basis_ms: 0,
                entries: row1,
                seqno: 9,
                retractions: vec![6],
            }),
        );
        let rows = a.export_rows_versioned();
        let carried = rows.iter().find(|r| r.origin == 1).expect("row exported");
        assert_eq!(
            (carried.seqno, carried.retractions.as_slice()),
            (9, &[6u16][..])
        );
        // A rebuilt router importing the carried row keeps the guard: a
        // delayed older frame from 1 is still rejected after the carry.
        let mut b = QuorumRouter::new(0, n, 1, ProtocolConfig::quorum());
        b.import_row_versioned(carried);
        assert_eq!(b.table().row_seqno(1), 9);
        assert!(b.table().row_retracts(1, 6));
        let mut stale = carried.entries.clone();
        stale[6] = LinkEntry::live(5, 0.0);
        let _ = b.on_message(
            2.0,
            &Message::LinkState(LinkStateMsg {
                from: NodeId(1),
                to: NodeId(0),
                view: 1,
                round: 1,
                basis_ms: 0,
                entries: stale,
                seqno: 8,
                retractions: vec![],
            }),
        );
        assert_eq!(b.table().row_seqno(1), 9, "older frame rejected");
        assert!(b.table().row_retracts(1, 6));
    }

    #[test]
    fn recommendations_update_routes_and_age() {
        let cfg = ProtocolConfig::quorum();
        let mut me = QuorumRouter::new(0, 9, 0, cfg);
        assert_eq!(me.route_age(8, 10.0), None);
        // A recommendation is only usable over a live first leg, so give
        // node 0 a measured link to the hop it is about to be recommended.
        let mut own = vec![LinkEntry::dead(); 9];
        own[4] = LinkEntry::live(10, 0.0);
        let _ = me.on_routing_tick(0.0, &own, &mut rng());
        let rec = Message::Recommendations(RecommendationMsg {
            from: NodeId(2),
            to: NodeId(0),
            view: 0,
            round: 3,
            basis_ms: 0,
            format: apor_linkstate::RecFormat::Compact,
            recs: vec![RecEntry {
                dst: NodeId(8),
                hop: NodeId(4),
                cost_ms: 20,
            }],
        });
        let _ = me.on_message(5.0, &rec);
        assert_eq!(me.best_hop(8, 6.0), Some(4));
        assert_eq!(me.route_age(8, 9.0), Some(4.0));
        // Expired recommendations stop being used directly.
        assert!(me.route_age(8, 500.0).unwrap() > 400.0);
        assert_eq!(me.best_hop(8, 500.0), None, "no fresh info at all");
    }

    #[test]
    fn cross_view_messages_dropped() {
        let cfg = ProtocolConfig::quorum();
        let mut me = QuorumRouter::new(0, 9, 3, cfg);
        let rec = Message::Recommendations(RecommendationMsg {
            from: NodeId(2),
            to: NodeId(0),
            view: 99,
            round: 3,
            basis_ms: 0,
            format: apor_linkstate::RecFormat::Compact,
            recs: vec![RecEntry {
                dst: NodeId(8),
                hop: NodeId(4),
                cost_ms: 20,
            }],
        });
        let _ = me.on_message(5.0, &rec);
        assert_eq!(me.best_hop(8, 6.0), None);
    }

    #[test]
    fn malformed_recs_ignored_without_panic() {
        let cfg = ProtocolConfig::quorum();
        let mut me = QuorumRouter::new(0, 9, 0, cfg);
        let rec = Message::Recommendations(RecommendationMsg {
            from: NodeId(2),
            to: NodeId(0),
            view: 0,
            round: 3,
            basis_ms: 0,
            format: apor_linkstate::RecFormat::Compact,
            recs: vec![
                RecEntry {
                    dst: NodeId(200), // out of range
                    hop: NodeId(4),
                    cost_ms: 20,
                },
                RecEntry {
                    dst: NodeId(8),
                    hop: NodeId(250), // out of range
                    cost_ms: 20,
                },
                RecEntry {
                    dst: NodeId(0), // about myself
                    hop: NodeId(4),
                    cost_ms: 20,
                },
            ],
        });
        let _ = me.on_message(5.0, &rec);
        assert_eq!(me.best_hop(8, 6.0), None);
    }

    #[test]
    fn double_failure_metric_counts_destinations() {
        let cfg = ProtocolConfig::quorum();
        let n = 9;
        // Kill my links to 2 and 6 — the default pair for dst 8 AND the
        // servers covering several other destinations.
        let mut own: Vec<LinkEntry> = (0..n).map(|_| LinkEntry::live(50, 0.0)).collect();
        own[0] = LinkEntry::live(0, 0.0);
        own[2] = LinkEntry::dead();
        own[6] = LinkEntry::dead();
        let mut me = QuorumRouter::new(0, n, 0, cfg);
        let mut g = rng();
        let _ = me.on_routing_tick(0.0, &own, &mut g);
        let d = me.double_rendezvous_failures(0.1);
        // dst 8's default pair {2, 6} is fully dead → at least dst 8 counts.
        assert!(me.both_defaults_failed(8, 0.1));
        assert!(d >= 1);
        // dst 1 shares my row: I am one of its default rendezvous, and my
        // own data for 1 is fresh → not a double failure.
        assert!(!me.both_defaults_failed(1, 0.1));
    }

    #[test]
    fn export_import_round_trips_entitled_rows() {
        let cfg = ProtocolConfig::quorum();
        let n = 9;
        let mut a = QuorumRouter::new(0, n, 0, cfg.clone());
        // Node 1 is a client of node 0 (shares row 0); node 4 is not.
        let row = |base: u16| -> Vec<LinkEntry> {
            (0..n)
                .map(|j| LinkEntry::live(base + j as u16, 0.0))
                .collect()
        };
        for from in [1usize, 4] {
            let _ = a.on_message(
                2.0,
                &Message::LinkState(LinkStateMsg {
                    from: NodeId::from_index(from),
                    to: NodeId(0),
                    view: 0,
                    round: 1,
                    basis_ms: 0,
                    entries: row(from as u16 * 10),
                    seqno: 0,
                    retractions: vec![],
                }),
            );
        }
        let exported = a.export_rows();
        assert!(exported.iter().any(|(o, t, _)| *o == 1 && *t == 2.0));
        // A fresh router (same position) re-imports only entitled rows.
        let mut b = QuorumRouter::new(0, n, 1, cfg);
        for (origin, t, entries) in exported {
            b.import_row(origin, &entries, t);
        }
        assert!(b.table().row_time(1).is_some(), "client row carried");
        assert!(
            b.table().row_time(4).is_none(),
            "non-client row must be dropped by the entitlement filter"
        );
    }
}
