//! Sans-io routing protocol cores for the all-pairs overlay.
//!
//! Everything here is a pure state machine: handlers take the current
//! time and decoded messages, and return messages to transmit. No sockets,
//! no clocks, no tasks — the `apor-netsim` driver and the tokio
//! UDP driver in `apor-overlay` both run the same code, which is the
//! property the paper leans on when it claims its emulation "uses the same
//! implementation as the one deployed on the Internet" (section 6.1).
//!
//! * [`config`] — the protocol constants of section 5's parameter table.
//! * [`prober`] — RON link monitoring: 30 s probes, rapid re-probe after a
//!   first loss, 5-failure death, EWMA latency; optionally the
//!   sub-quadratic entitled+sampled probing plane with batched frames.
//! * [`adaptive`] — the per-link adaptive probe-rate state machine
//!   (exponential backoff on stable links, snap-back on change).
//! * [`fullmesh`] — the baseline: broadcast link state to everyone,
//!   `Θ(n²)` per-node communication.
//! * [`quorum_router`] — the paper's contribution: the two-round grid
//!   quorum protocol (section 3) with rapid rendezvous failover, remote
//!   failure detection, dead-destination suppression and §4.2 local route
//!   scavenging.
//! * [`multihop`] — the `log l` iteration scheme for optimal routes of
//!   length ≤ l (section 3, "Multi-hop routes"), with the `Sec` next-hop
//!   recovery trick, plus its communication accounting.
//! * [`onehop`] — offline reference computations for the figure 1 detour
//!   study (best one-hop, best-after-excluding-top-n%).
//! * [`feasibility`] — the Babel-style route discipline (RFC 8966) the
//!   k-hop detour layer runs under: per-destination feasibility
//!   distances, seqno-gated acceptance, explicit retraction, and the
//!   loop-freedom argument that lets the overlay splice detours from
//!   live rows without a consistent snapshot. The whole discipline —
//!   wire trailer, feasibility rules, source-routed splices, measured
//!   recovery wins — is documented in `docs/ROUTING.md` at the
//!   repository root.

#![forbid(unsafe_code)]
// The numeric kernels index several arrays with one loop counter;
// iterator rewrites obscure them without changing the codegen.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod config;
pub mod feasibility;
pub mod fullmesh;
pub mod multihop;
pub mod onehop;
pub mod prober;
pub mod quorum_router;

pub use adaptive::{AdaptiveProbeRate, RateSample};
pub use config::{ProbePolicy, ProtocolConfig};
pub use feasibility::{select_detour, Detour, FeasEntry, FeasibilityTable};
pub use fullmesh::FullMeshRouter;
pub use multihop::{multihop_routes, MultiHopResult};
pub use prober::{ProbeAction, Prober};
pub use quorum_router::{QuorumRouter, RouteDecision};

use apor_linkstate::Message;

/// One exported link-state row together with its route-discipline
/// version: what the overlay carries across a membership change so the
/// rebuilt router keeps both the measurements *and* the seqno guard
/// (a carried row must not be replayable over a newer one).
#[derive(Debug, Clone, PartialEq)]
pub struct VersionedRow {
    /// Row origin (grid index in the view the row was exported from).
    pub origin: usize,
    /// Original receipt time, seconds (freshness keeps applying).
    pub received_at: f64,
    /// The origin's row seqno (0 = unversioned).
    pub seqno: u16,
    /// Destinations the origin explicitly retracted at this seqno.
    pub retractions: Vec<u16>,
    /// The row entries, full width.
    pub entries: Vec<apor_linkstate::LinkEntry>,
}

/// The routing-side behaviour shared by the full-mesh baseline and the
/// quorum router, so the overlay node runtime is algorithm-agnostic.
pub trait RoutingAlgorithm {
    /// Called every routing interval with the node's freshly measured own
    /// link-state row. Returns the messages to transmit.
    fn on_routing_tick(
        &mut self,
        now: f64,
        own_row: &[apor_linkstate::LinkEntry],
        rng: &mut rand_chacha::ChaCha8Rng,
    ) -> Vec<Message>;

    /// Called for every routing-class message addressed to this node.
    /// May return immediate transmissions (e.g. link state to a freshly
    /// selected failover rendezvous).
    fn on_message(&mut self, now: f64, msg: &Message) -> Vec<Message>;

    /// The current best first hop towards `dst` (`hop == dst` ⇒ direct),
    /// or `None` when the node knows no route.
    fn best_hop(&self, dst: usize, now: f64) -> Option<usize>;

    /// Seconds since this node last received routing information about
    /// `dst` (the freshness metric of figures 12–14).
    fn route_age(&self, dst: usize, now: f64) -> Option<f64>;

    /// Number of destinations currently experiencing a *double rendezvous
    /// failure* from this node's perspective (figure 11). Zero for the
    /// full-mesh baseline, which has no rendezvous.
    fn double_rendezvous_failures(&self, now: f64) -> usize;

    /// Snapshot every held link-state row as `(origin index, receipt
    /// time, entries)` — the overlay layer uses this on a membership
    /// change to carry surviving measurements into the freshly built
    /// router (the *incremental view remap*) instead of rebuilding from
    /// empty.
    fn export_rows(&self) -> Vec<(usize, f64, Vec<apor_linkstate::LinkEntry>)>;

    /// Install a row carried over from a previous view, already
    /// translated into this router's index space and stamped with its
    /// *original* receipt time (so the 3-interval freshness rule keeps
    /// applying). Implementations drop rows their role does not entitle
    /// them to; out-of-range rows are ignored.
    fn import_row(
        &mut self,
        origin: usize,
        entries: &[apor_linkstate::LinkEntry],
        received_at: f64,
    );

    /// [`export_rows`](RoutingAlgorithm::export_rows) carrying the
    /// route discipline: each row's origin seqno and retraction lane
    /// ride along. The default wraps the unversioned export (seqno 0,
    /// nothing retracted) so baseline algorithms need no changes.
    fn export_rows_versioned(&self) -> Vec<VersionedRow> {
        self.export_rows()
            .into_iter()
            .map(|(origin, received_at, entries)| VersionedRow {
                origin,
                received_at,
                seqno: 0,
                retractions: Vec::new(),
                entries,
            })
            .collect()
    }

    /// [`import_row`](RoutingAlgorithm::import_row) carrying the route
    /// discipline. The default drops the version (baseline algorithms
    /// store rows unversioned).
    fn import_row_versioned(&mut self, row: &VersionedRow) {
        self.import_row(row.origin, &row.entries, row.received_at);
    }
}
