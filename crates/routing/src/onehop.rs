//! Offline one-hop detour analysis — the reference computations behind
//! figure 1 and the effectiveness experiments.
//!
//! Figure 1 asks: for host pairs whose direct RTT exceeds 400 ms, how much
//! does the *best* one-hop detour help, and how well would a *random*
//! intermediary do? Its "Excluding Top n% of 1-Hops" curves remove the
//! best n% of intermediaries per pair and take the best of the remainder —
//! showing that the good detours are a small, specific set that random
//! selection will miss.

use apor_linkstate::LinkEntry;
use apor_topology::LatencyMatrix;

/// Node `i`'s ground-truth link-state row: what a perfectly converged
/// prober would report for every direct link (self entry alive at
/// 0 ms). Shared by the benchmark fixtures and the scale study.
#[must_use]
pub fn ground_truth_row(m: &LatencyMatrix, i: usize) -> Vec<LinkEntry> {
    (0..m.len())
        .map(|j| {
            if i == j {
                LinkEntry::live(0, 0.0)
            } else {
                LinkEntry::live(
                    LinkEntry::quantize_latency(m.rtt(i, j)),
                    m.loss(i, j) as f32,
                )
            }
        })
        .collect()
}

/// All one-hop total costs for `(src, dst)`, sorted ascending. Excludes
/// the endpoints themselves; includes unreachable (infinite) relays last.
#[must_use]
pub fn one_hop_totals(m: &LatencyMatrix, src: usize, dst: usize) -> Vec<f64> {
    let mut totals: Vec<f64> = (0..m.len())
        .filter(|&k| k != src && k != dst)
        .map(|k| m.rtt(src, k) + m.rtt(k, dst))
        .collect();
    totals.sort_by(|a, b| a.partial_cmp(b).unwrap());
    totals
}

/// The best one-hop total after *excluding* the best `exclude_frac`
/// fraction of intermediaries (figure 1's "Excluding Top n% of 1-Hops").
///
/// `exclude_frac = 0.0` is the plain best one-hop. Returns `None` when no
/// finite candidate survives the exclusion.
#[must_use]
pub fn best_one_hop_excluding_top(
    m: &LatencyMatrix,
    src: usize,
    dst: usize,
    exclude_frac: f64,
) -> Option<f64> {
    assert!((0.0..1.0).contains(&exclude_frac), "fraction in [0,1)");
    let totals = one_hop_totals(m, src, dst);
    if totals.is_empty() {
        return None;
    }
    let skip = (totals.len() as f64 * exclude_frac).ceil() as usize;
    let skip = if exclude_frac > 0.0 { skip.max(1) } else { 0 };
    totals
        .get(skip.min(totals.len() - 1))
        .copied()
        .filter(|c| c.is_finite())
}

/// The route latency actually experienced for `(src, dst)` when using the
/// better of the direct path and the given one-hop candidate cost.
#[must_use]
pub fn effective_latency(m: &LatencyMatrix, src: usize, dst: usize, one_hop: Option<f64>) -> f64 {
    let direct = m.rtt(src, dst);
    match one_hop {
        Some(c) => direct.min(c),
        None => direct,
    }
}

/// All ordered high-latency pairs: direct RTT above `threshold_ms` (and
/// finite — the paper "excludes paths for which all pings were lost").
#[must_use]
pub fn high_latency_pairs(m: &LatencyMatrix, threshold_ms: f64) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..m.len() {
        for j in 0..m.len() {
            if i == j {
                continue;
            }
            let rtt = m.rtt(i, j);
            if rtt.is_finite() && rtt > threshold_ms {
                out.push((i, j));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detour_world() -> LatencyMatrix {
        // 5 nodes; 0→4 direct 500 ms; best relay 1 (total 110); second
        // relay 2 (200); third relay 3 (460).
        let mut m = LatencyMatrix::uniform(5, 1000.0);
        m.set_rtt(0, 4, 500.0);
        m.set_rtt(0, 1, 50.0);
        m.set_rtt(1, 4, 60.0);
        m.set_rtt(0, 2, 100.0);
        m.set_rtt(2, 4, 100.0);
        m.set_rtt(0, 3, 230.0);
        m.set_rtt(3, 4, 230.0);
        m
    }

    #[test]
    fn totals_sorted_ascending() {
        let m = detour_world();
        let t = one_hop_totals(&m, 0, 4);
        assert_eq!(t, vec![110.0, 200.0, 460.0]);
    }

    #[test]
    fn excluding_zero_is_best() {
        let m = detour_world();
        assert_eq!(best_one_hop_excluding_top(&m, 0, 4, 0.0), Some(110.0));
    }

    #[test]
    fn excluding_top_skips_best_relays() {
        let m = detour_world();
        // Excluding the top 30% of 3 candidates skips ⌈0.9⌉ = 1.
        assert_eq!(best_one_hop_excluding_top(&m, 0, 4, 0.3), Some(200.0));
        // Excluding the top 50% skips ⌈1.5⌉ = 2.
        assert_eq!(best_one_hop_excluding_top(&m, 0, 4, 0.5), Some(460.0));
        // Tiny exclusions still skip at least one (the paper's top-3%
        // curve removes the best handful).
        assert_eq!(best_one_hop_excluding_top(&m, 0, 4, 0.01), Some(200.0));
    }

    #[test]
    fn effective_latency_prefers_direct_when_better() {
        let m = detour_world();
        assert_eq!(effective_latency(&m, 0, 4, Some(110.0)), 110.0);
        assert_eq!(effective_latency(&m, 0, 1, Some(800.0)), 50.0);
        assert_eq!(effective_latency(&m, 0, 1, None), 50.0);
    }

    #[test]
    fn high_latency_pairs_threshold() {
        let m = detour_world();
        let pairs = high_latency_pairs(&m, 400.0);
        assert!(pairs.contains(&(0, 4)));
        assert!(!pairs.contains(&(0, 1)));
        // Ordered pairs: both directions appear.
        assert!(pairs.contains(&(4, 0)));
    }

    #[test]
    fn unreachable_relays_excluded() {
        let mut m = LatencyMatrix::unreachable(4);
        m.set_rtt(0, 3, 900.0);
        // No relay has finite legs.
        assert_eq!(best_one_hop_excluding_top(&m, 0, 3, 0.0), None);
        assert_eq!(effective_latency(&m, 0, 3, None), 900.0);
    }

    #[test]
    fn two_node_world_has_no_relays() {
        let m = LatencyMatrix::uniform(2, 100.0);
        assert!(one_hop_totals(&m, 0, 1).is_empty());
        assert_eq!(best_one_hop_excluding_top(&m, 0, 1, 0.0), None);
    }
}
