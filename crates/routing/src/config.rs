//! Protocol configuration — the parameter table of section 5.
//!
//! | Configuration parameter | Full-mesh (RON) | Quorum system |
//! |---|---|---|
//! | routing interval (r)    | 30 s | 15 s |
//! | probing interval (p)    | 30 s | 30 s |
//! | #probes for failure     | 5    | 5    |
//!
//! The quorum system halves the routing interval because, absent
//! rendezvous failures, it takes two routing intervals to propagate fresh
//! probe data into optimal one-hop routes (section 4, "Comparison to n²
//! link-state failover").

use apor_linkstate::RecFormat;
use serde::{Deserialize, Serialize};

/// All protocol timing and format knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Routing interval `r`, seconds: how often link state / recommendations
    /// are exchanged.
    pub routing_interval_s: f64,
    /// Probing interval `p`, seconds.
    pub probe_interval_s: f64,
    /// Consecutive failed probes that mark a link dead (RON: 5).
    pub probes_for_failure: u32,
    /// Per-probe reply timeout, seconds.
    pub probe_timeout_s: f64,
    /// Accelerated probing interval after a first loss (RON's rapid
    /// failure detection), seconds. Must allow `probes_for_failure`
    /// losses within one probing interval.
    pub rapid_probe_interval_s: f64,
    /// Measurement age a rendezvous server will still base recommendations
    /// on: the paper uses 3 routing intervals (section 6.2.2).
    pub staleness_intervals: f64,
    /// Age after which a *received* route recommendation is no longer
    /// trusted for forwarding (falls back to §4.2 scavenging).
    pub route_expiry_intervals: f64,
    /// Missing-recommendation time after which a remote rendezvous failure
    /// is declared for a destination, in routing intervals. The paper's
    /// analysis allows up to one interval of detection delay; we use 2.5
    /// to ride out one lost message.
    pub remote_failure_intervals: f64,
    /// Grace period after first sending link state to a server before
    /// remote-failure detection starts, in routing intervals.
    pub server_grace_intervals: f64,
    /// Recommendation entry wire format.
    pub rec_format: RecFormat,
    /// EWMA weight of new latency samples.
    pub ewma_alpha: f64,
    /// Ceiling the adaptive per-link probe rate backs off to on stable
    /// links, seconds. Equal to `probe_interval_s` by default, which
    /// disables backoff (the paper's fixed-rate behaviour); the
    /// deployment tuning sets it higher so long-stable links are probed
    /// rarely.
    pub probe_interval_max_s: f64,
    /// Multiplier applied to a link's probe interval after each stable
    /// sample (exponential backoff towards `probe_interval_max_s`).
    pub probe_backoff: f64,
    /// Relative latency change that snaps a backed-off link straight
    /// back to `rapid_probe_interval_s` (loss always snaps).
    pub probe_snap_frac: f64,
    /// Which peers the prober measures.
    pub probe_policy: ProbePolicy,
    /// Number of non-entitled peers sampled concurrently under
    /// [`ProbePolicy::Entitled`]. A constant (not `O(√n)`) budget keeps
    /// per-node probe bytes strictly sub-linear in `n`.
    pub probe_sample_budget: usize,
    /// Maximum intermediate relays a feasibility-checked detour may
    /// splice when both recommendations and 1-hop scavenging fail
    /// (1 = the paper's behaviour, 1-hop detours only; capped at 8).
    pub max_detour_hops: usize,
}

/// Which peers a node probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbePolicy {
    /// Probe every other member — `O(n)` targets per node, the paper's
    /// RON baseline and the default.
    FullMesh,
    /// Probe only the node's `~2√n` rendezvous servers plus a rotating
    /// [`probe_sample_budget`](ProtocolConfig::probe_sample_budget)-sized
    /// sample of other peers, batched into
    /// [`ProbeBatch`](apor_linkstate::Message::ProbeBatch) frames.
    /// Coverage is preserved: any client pair (i, j) shares a rendezvous
    /// server s, and both legs i→s and j→s are entitled, so s can always
    /// recommend the two-hop route via itself or better.
    Entitled,
}

impl ProtocolConfig {
    /// The paper's full-mesh (RON baseline) configuration: r = 30 s.
    #[must_use]
    pub fn ron() -> Self {
        ProtocolConfig {
            routing_interval_s: 30.0,
            ..Self::base()
        }
    }

    /// The paper's quorum-system configuration: r = 15 s.
    #[must_use]
    pub fn quorum() -> Self {
        ProtocolConfig {
            routing_interval_s: 15.0,
            ..Self::base()
        }
    }

    fn base() -> Self {
        ProtocolConfig {
            routing_interval_s: 30.0,
            probe_interval_s: 30.0,
            probes_for_failure: 5,
            probe_timeout_s: 3.0,
            rapid_probe_interval_s: 5.0,
            staleness_intervals: 3.0,
            route_expiry_intervals: 4.0,
            remote_failure_intervals: 2.5,
            server_grace_intervals: 2.0,
            rec_format: RecFormat::Compact,
            ewma_alpha: 0.3,
            probe_interval_max_s: 30.0,
            probe_backoff: 2.0,
            probe_snap_frac: 0.3,
            probe_policy: ProbePolicy::FullMesh,
            probe_sample_budget: 16,
            max_detour_hops: 1,
        }
    }

    /// Allow feasibility-checked detours through up to `hops`
    /// intermediate relays (clamped to the 1..=8 range the loop-freedom
    /// proptest covers).
    #[must_use]
    pub fn with_detour_hops(mut self, hops: usize) -> Self {
        self.max_detour_hops = hops.clamp(1, 8);
        self
    }

    /// Enable the sub-quadratic probing plane: entitled + sampled
    /// targets, per-link adaptive rates backing off to
    /// `probe_interval_max_s`, batched probe frames.
    #[must_use]
    pub fn with_subquadratic_probing(mut self, probe_interval_max_s: f64) -> Self {
        self.probe_policy = ProbePolicy::Entitled;
        self.probe_interval_max_s = probe_interval_max_s;
        self
    }

    /// The staleness window in seconds (3·r by default).
    #[must_use]
    pub fn staleness_s(&self) -> f64 {
        self.staleness_intervals * self.routing_interval_s
    }

    /// The route-expiry window in seconds.
    #[must_use]
    pub fn route_expiry_s(&self) -> f64 {
        self.route_expiry_intervals * self.routing_interval_s
    }

    /// Remote-failure timeout in seconds.
    #[must_use]
    pub fn remote_failure_s(&self) -> f64 {
        self.remote_failure_intervals * self.routing_interval_s
    }

    /// Server grace period in seconds.
    #[must_use]
    pub fn server_grace_s(&self) -> f64 {
        self.server_grace_intervals * self.routing_interval_s
    }

    /// Sanity-check the invariants the failure-detection analysis needs.
    ///
    /// # Panics
    /// Panics when rapid probing cannot detect a failure within one
    /// probing interval, or intervals are non-positive.
    pub fn validate(&self) {
        assert!(self.routing_interval_s > 0.0);
        assert!(self.probe_interval_s > 0.0);
        assert!(self.probes_for_failure >= 1);
        assert!(
            f64::from(self.probes_for_failure) * self.rapid_probe_interval_s
                <= self.probe_interval_s,
            "rapid probing must fit {} probes inside one probing interval",
            self.probes_for_failure
        );
        assert!(self.probe_timeout_s < self.rapid_probe_interval_s + self.probe_timeout_s);
        assert!(self.staleness_intervals > 0.0);
        assert!(
            self.probe_interval_max_s >= self.probe_interval_s,
            "probe backoff ceiling below the base probing interval"
        );
        assert!(self.probe_backoff > 1.0, "backoff must grow the interval");
        assert!(self.probe_snap_frac > 0.0);
        assert!(self.probe_sample_budget >= 1);
        assert!(
            (1..=8).contains(&self.max_detour_hops),
            "detour splicing is bounded to 8 relays"
        );
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        Self::quorum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameter_table() {
        let ron = ProtocolConfig::ron();
        assert_eq!(ron.routing_interval_s, 30.0);
        assert_eq!(ron.probe_interval_s, 30.0);
        assert_eq!(ron.probes_for_failure, 5);
        let q = ProtocolConfig::quorum();
        assert_eq!(q.routing_interval_s, 15.0);
        assert_eq!(q.probe_interval_s, 30.0);
        assert_eq!(q.probes_for_failure, 5);
    }

    #[test]
    fn staleness_is_three_routing_intervals() {
        assert_eq!(ProtocolConfig::quorum().staleness_s(), 45.0);
        assert_eq!(ProtocolConfig::ron().staleness_s(), 90.0);
    }

    #[test]
    fn default_configs_validate() {
        ProtocolConfig::ron().validate();
        ProtocolConfig::quorum().validate();
    }

    #[test]
    fn detour_hops_clamp_to_the_proptested_range() {
        assert_eq!(ProtocolConfig::quorum().max_detour_hops, 1);
        let c = ProtocolConfig::quorum().with_detour_hops(0);
        assert_eq!(c.max_detour_hops, 1);
        let c = ProtocolConfig::quorum().with_detour_hops(20);
        assert_eq!(c.max_detour_hops, 8);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "rapid probing")]
    fn validate_rejects_slow_rapid_probing() {
        let mut c = ProtocolConfig::quorum();
        c.rapid_probe_interval_s = 10.0; // 5 × 10 s > 30 s probing interval
        c.validate();
    }

    #[test]
    fn rapid_detection_within_one_probing_interval() {
        // The paper: "our implementation detects failures within 1 probing
        // period". With the defaults, 5 rapid probes take 25 s ≤ 30 s.
        let c = ProtocolConfig::quorum();
        let detect = f64::from(c.probes_for_failure) * c.rapid_probe_interval_s;
        assert!(detect <= c.probe_interval_s);
    }
}
