//! The full-mesh link-state baseline — RON's original routing algorithm.
//!
//! Every routing interval each node broadcasts its measured link-state row
//! to *all* other nodes, so everyone holds the whole matrix and computes
//! optimal one-hop routes locally. Correct and simple, but `Θ(n²)`
//! per-node communication — the cost the paper's quorum scheme removes.

use crate::config::ProtocolConfig;
use crate::RoutingAlgorithm;
use apor_linkstate::{LinkEntry, LinkStateMsg, LinkStateStore, LinkStateTable, Message};
use apor_quorum::NodeId;

/// The baseline router, generic over its store (default: the dense
/// table — every node legitimately holds all `n` rows here, so dense
/// `O(1)` row lookups are the right trade).
#[derive(Debug)]
pub struct FullMeshRouter<S: LinkStateStore = LinkStateTable> {
    me: usize,
    n: usize,
    view: u32,
    round: u32,
    config: ProtocolConfig,
    table: S,
}

impl FullMeshRouter<LinkStateTable> {
    /// A baseline router for node `me` of `n` under membership `view`.
    #[must_use]
    pub fn new(me: usize, n: usize, view: u32, config: ProtocolConfig) -> Self {
        Self::with_store(me, n, view, config, LinkStateTable::new(n))
    }
}

impl<S: LinkStateStore> FullMeshRouter<S> {
    /// A baseline router over an explicit store.
    ///
    /// # Panics
    /// Panics if `me ≥ n` or the store covers a different `n`.
    #[must_use]
    pub fn with_store(me: usize, n: usize, view: u32, config: ProtocolConfig, table: S) -> Self {
        assert!(me < n);
        assert_eq!(table.len(), n, "store must cover n nodes");
        FullMeshRouter {
            me,
            n,
            view,
            round: 0,
            config,
            table,
        }
    }

    /// The link-state store (for inspection).
    #[must_use]
    pub fn table(&self) -> &S {
        &self.table
    }
}

impl<S: LinkStateStore> RoutingAlgorithm for FullMeshRouter<S> {
    fn on_routing_tick(
        &mut self,
        now: f64,
        own_row: &[LinkEntry],
        _rng: &mut rand_chacha::ChaCha8Rng,
    ) -> Vec<Message> {
        self.table.update_row(self.me, own_row, now);
        self.round += 1;
        (0..self.n)
            .filter(|&j| j != self.me)
            .map(|j| {
                Message::LinkState(LinkStateMsg {
                    from: NodeId::from_index(self.me),
                    to: NodeId::from_index(j),
                    view: self.view,
                    round: self.round,
                    basis_ms: (now * 1000.0) as u32,
                    entries: own_row.to_vec(),
                    seqno: 0,
                    retractions: vec![],
                })
            })
            .collect()
    }

    fn on_message(&mut self, now: f64, msg: &Message) -> Vec<Message> {
        if let Message::LinkState(ls) = msg {
            if ls.view == self.view
                && ls.entries.len() == self.n
                && ls.from.index() < self.n
                && ls.from.index() != self.me
            {
                self.table.update_row(ls.from.index(), &ls.entries, now);
            }
        }
        Vec::new()
    }

    fn best_hop(&self, dst: usize, now: f64) -> Option<usize> {
        if dst == self.me || dst >= self.n {
            return None;
        }
        let max_age = self.config.staleness_s();
        let direct = if self.table.row_fresh(self.me, now, max_age) {
            self.table.entry(self.me, dst).cost()
        } else {
            f64::INFINITY
        };
        let mut best = (dst, direct);
        for (h, c) in self.table.one_hop_options(self.me, dst, now, max_age) {
            if c < best.1 {
                best = (h, c);
            }
        }
        best.1.is_finite().then_some(best.0)
    }

    fn route_age(&self, dst: usize, now: f64) -> Option<f64> {
        // The full-mesh analogue of "time since last recommendation" is
        // the age of the destination's link-state broadcast.
        self.table.row_age(dst, now)
    }

    fn double_rendezvous_failures(&self, _now: f64) -> usize {
        0
    }

    fn export_rows(&self) -> Vec<(usize, f64, Vec<LinkEntry>)> {
        self.table
            .present_rows()
            .into_iter()
            .filter_map(|origin| {
                let time = self.table.row_time(origin)?;
                Some((origin, time, self.table.row_dense(origin)?))
            })
            .collect()
    }

    fn import_row(&mut self, origin: usize, entries: &[LinkEntry], received_at: f64) {
        if origin >= self.n || entries.len() != self.n {
            return;
        }
        // Full mesh: every row is entitled.
        self.table.update_row(origin, entries, received_at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0)
    }

    fn live_row(costs: &[u16]) -> Vec<LinkEntry> {
        costs.iter().map(|&c| LinkEntry::live(c, 0.0)).collect()
    }

    /// Wire three routers together by hand and check that everyone learns
    /// optimal one-hop routes.
    #[test]
    fn three_node_convergence() {
        let cfg = ProtocolConfig::ron();
        let mut routers: Vec<FullMeshRouter> = (0..3)
            .map(|i| FullMeshRouter::new(i, 3, 0, cfg.clone()))
            .collect();
        // Node 0↔2 expensive (300), 0↔1 and 1↔2 cheap (50): relay via 1 wins.
        let rows = [
            live_row(&[0, 50, 300]),
            live_row(&[50, 0, 50]),
            live_row(&[300, 50, 0]),
        ];
        let mut r = rng();
        let mut msgs = Vec::new();
        for (i, router) in routers.iter_mut().enumerate() {
            msgs.extend(router.on_routing_tick(1.0, &rows[i], &mut r));
        }
        // Each of 3 nodes broadcasts to 2 peers.
        assert_eq!(msgs.len(), 6);
        for m in &msgs {
            let to = m.to().index();
            routers[to].on_message(1.1, m);
        }
        assert_eq!(routers[0].best_hop(2, 2.0), Some(1));
        assert_eq!(routers[2].best_hop(0, 2.0), Some(1));
        assert_eq!(routers[0].best_hop(1, 2.0), Some(1), "direct best");
    }

    #[test]
    fn stale_tables_stop_routing() {
        let cfg = ProtocolConfig::ron();
        let mut a = FullMeshRouter::new(0, 2, 0, cfg.clone());
        let mut b = FullMeshRouter::new(1, 2, 0, cfg.clone());
        let mut r = rng();
        let m = a.on_routing_tick(0.0, &live_row(&[0, 10]), &mut r);
        for msg in &m {
            b.on_message(0.1, msg);
        }
        let _ = b.on_routing_tick(0.2, &live_row(&[10, 0]), &mut r);
        assert_eq!(b.best_hop(0, 1.0), Some(0));
        // 3 routing intervals later everything expired.
        assert_eq!(b.best_hop(0, 1000.0), None);
    }

    #[test]
    fn wrong_view_messages_dropped() {
        let cfg = ProtocolConfig::ron();
        let mut a = FullMeshRouter::new(0, 2, 7, cfg.clone());
        let mut b = FullMeshRouter::new(1, 2, 8, cfg);
        let mut r = rng();
        for msg in a.on_routing_tick(0.0, &live_row(&[0, 10]), &mut r) {
            b.on_message(0.1, &msg);
        }
        assert!(b.table().row_time(0).is_none(), "cross-view row accepted");
    }

    #[test]
    fn route_age_tracks_broadcasts() {
        let cfg = ProtocolConfig::ron();
        let mut a = FullMeshRouter::new(0, 2, 0, cfg.clone());
        let mut b = FullMeshRouter::new(1, 2, 0, cfg);
        let mut r = rng();
        assert_eq!(b.route_age(0, 5.0), None);
        for msg in a.on_routing_tick(0.0, &live_row(&[0, 10]), &mut r) {
            b.on_message(2.0, &msg);
        }
        assert_eq!(b.route_age(0, 5.0), Some(3.0));
        assert_eq!(b.double_rendezvous_failures(5.0), 0);
    }

    #[test]
    fn message_count_is_quadratic() {
        // The point of the paper: n−1 messages per node per interval.
        let cfg = ProtocolConfig::ron();
        let n = 50;
        let mut router = FullMeshRouter::new(0, n, 0, cfg);
        let row = live_row(&vec![1u16; n]);
        let mut r = rng();
        let msgs = router.on_routing_tick(0.0, &row, &mut r);
        assert_eq!(msgs.len(), n - 1);
    }
}
