//! The multi-hop extension (section 3, "Multi-hop routes").
//!
//! Repeating the two-round protocol `⌈log₂ l⌉` times finds optimal routes
//! of length ≤ l: at iteration `t` each node announces, for every
//! destination, the cost of its best known path of length ≤ `2^(t−1)`
//! (plus the identity of the *second node* on that path, `Sec`, which is
//! all a router needs to forward). The rendezvous computes the best
//! "one hop" over these modified link states, which splices two
//! `2^(t−1)`-hop paths into a `2^t`-hop path. With `⌈log₂ n⌉` iterations
//! this yields **all-pairs shortest paths with `Θ(n√n·log n)` per-node
//! communication** — asymptotically better than the `Θ(n²)` of full-mesh
//! link state.
//!
//! The paper never deploys this variant, so we implement it as a
//! synchronous round executor over a ground-truth matrix: the same
//! computation every node would do, plus exact communication accounting.
//! This is what the multi-hop experiment binary and the optimality tests
//! drive.

use apor_linkstate::{LINKSTATE_HEADER_SIZE, REC_HEADER_SIZE, UDP_IP_OVERHEAD};
use apor_quorum::Grid;
use apor_topology::LatencyMatrix;

/// The outcome of the iterated protocol.
#[derive(Debug, Clone)]
pub struct MultiHopResult {
    /// Number of nodes.
    pub n: usize,
    /// Iterations executed (`⌈log₂ l⌉`).
    pub iterations: usize,
    /// Maximum path length these costs are optimal over (`2^iterations`).
    pub max_hops: usize,
    /// Row-major best path costs of length ≤ `max_hops`.
    pub cost: Vec<f64>,
    /// Row-major next hop (`Sec`): the node to forward to for each
    /// `(src, dst)`; `next[i][j] == j` means the direct link.
    pub next_hop: Vec<usize>,
    /// Per-node bytes sent across all iterations (IP+UDP included).
    pub bytes_sent: Vec<u64>,
}

impl MultiHopResult {
    /// Cost of the computed route `i → j`.
    #[must_use]
    pub fn cost_of(&self, i: usize, j: usize) -> f64 {
        self.cost[i * self.n + j]
    }

    /// Next hop on the computed route `i → j`.
    #[must_use]
    pub fn next_of(&self, i: usize, j: usize) -> usize {
        self.next_hop[i * self.n + j]
    }

    /// Follow next-hop pointers from `i` to `j`, returning the full path
    /// (starting at `i`, ending at `j`), or `None` if forwarding loops or
    /// dead-ends.
    #[must_use]
    pub fn path(&self, i: usize, j: usize) -> Option<Vec<usize>> {
        if i == j {
            return Some(vec![i]);
        }
        if !self.cost_of(i, j).is_finite() {
            return None;
        }
        let mut path = vec![i];
        let mut cur = i;
        while cur != j {
            if path.len() > self.n {
                return None; // loop
            }
            cur = self.next_of(cur, j);
            path.push(cur);
        }
        Some(path)
    }

    /// Mean bytes sent per node.
    #[must_use]
    pub fn mean_bytes_sent(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.bytes_sent.iter().sum::<u64>() as f64 / self.n as f64
    }
}

/// Run the iterated quorum protocol to find optimal routes of length ≤
/// `max_hops` (rounded up to a power of two) for all pairs.
///
/// # Panics
/// Panics if `max_hops < 1`.
#[must_use]
pub fn multihop_routes(matrix: &LatencyMatrix, max_hops: usize) -> MultiHopResult {
    assert!(max_hops >= 1, "paths need at least one hop");
    let n = matrix.len();
    let grid = Grid::new(n.max(1));
    let iterations = usize::BITS as usize - (max_hops - 1).leading_zeros() as usize;
    // iterations = ceil(log2(max_hops)); max_hops=1 → 0 iterations.

    // State: row[i][j] = best cost of a ≤ 2^t hop path; sec[i][j] = second
    // node on it. t = 0 start: direct links.
    let mut cost: Vec<f64> = (0..n * n).map(|idx| matrix.rtt(idx / n, idx % n)).collect();
    let mut sec: Vec<usize> = (0..n * n).map(|idx| idx % n).collect();
    let mut bytes_sent = vec![0u64; n];

    // Per-iteration wire costs. The modified link state carries, per
    // destination, the 3-byte entry plus the 2-byte Sec identity.
    let entry_size = 3 + 2;
    for _t in 0..iterations {
        // Round-one accounting: each node sends its modified row to its
        // rendezvous servers.
        for i in 0..n {
            let servers = grid.rendezvous_servers(i).len() as u64;
            bytes_sent[i] +=
                servers * (LINKSTATE_HEADER_SIZE + entry_size * n + UDP_IP_OVERHEAD) as u64;
        }

        // Rendezvous computation: for every pair, the best splice
        // min_k row_i[k] + row_j[k]. Every pair has a rendezvous holding
        // both rows (Theorem 1), so we may compute this globally.
        let mut new_cost = cost.clone();
        let mut new_sec = sec.clone();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let mut best = cost[i * n + j];
                let mut best_k = None;
                for k in 0..n {
                    if k == i {
                        continue;
                    }
                    let c = cost[i * n + k] + cost[j * n + k];
                    if c < best {
                        best = c;
                        best_k = Some(k);
                    }
                }
                if let Some(k) = best_k {
                    new_cost[i * n + j] = best;
                    // Forwarding rule: to reach j via the splice through k,
                    // i first walks its ≤2^(t-1) path to k, whose second
                    // node is sec[i][k].
                    new_sec[i * n + j] = sec[i * n + k];
                }
            }
        }
        cost = new_cost;
        sec = new_sec;

        // Round-two accounting: recommendations (dst, sec, cost = 6 B) to
        // each client about each other client.
        for i in 0..n {
            let clients = grid.rendezvous_clients(i).len() as u64;
            let per_msg = REC_HEADER_SIZE as u64 + 6 * clients + UDP_IP_OVERHEAD as u64;
            bytes_sent[i] += clients * per_msg;
        }
    }

    MultiHopResult {
        n,
        iterations,
        max_hops: 1usize << iterations,
        cost,
        next_hop: sec,
        bytes_sent,
    }
}

/// Reference: best path costs using at most `max_hops` hops, by
/// hop-bounded dynamic programming (Bellman–Ford layers). `O(n³·h)` — for
/// verifying the protocol, not for production.
#[must_use]
pub fn bounded_shortest_paths(matrix: &LatencyMatrix, max_hops: usize) -> Vec<f64> {
    let n = matrix.len();
    let mut cost: Vec<f64> = (0..n * n).map(|idx| matrix.rtt(idx / n, idx % n)).collect();
    for _ in 1..max_hops {
        let mut next = cost.clone();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                // Extend by one hop: i → k (direct), then ≤ current hops k → j.
                for k in 0..n {
                    if k == i {
                        continue;
                    }
                    let c = matrix.rtt(i, k) + cost[k * n + j];
                    if c < next[i * n + j] {
                        next[i * n + j] = c;
                    }
                }
            }
        }
        cost = next;
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A line topology: 0–1–2–3–4 cheap, everything else expensive.
    fn line(n: usize) -> LatencyMatrix {
        let mut m = LatencyMatrix::uniform(n, 1000.0);
        for i in 0..n - 1 {
            m.set_rtt(i, i + 1, 10.0);
        }
        m
    }

    #[test]
    fn path_detects_forwarding_loop() {
        // A corrupted table: 0 → 2 forwards via 1, which forwards back
        // via 0, yet the advertised cost is finite. path() must bail out
        // with None instead of walking forever.
        let n = 3;
        let mut next_hop: Vec<usize> = (0..n * n).map(|i| i % n).collect();
        next_hop[2] = 1; // next_of(0, 2) = 1
        next_hop[n + 2] = 0; // next_of(1, 2) = 0
        let r = MultiHopResult {
            n,
            iterations: 1,
            max_hops: 2,
            cost: vec![10.0; n * n],
            next_hop,
            bytes_sent: vec![0; n],
        };
        assert_eq!(r.path(0, 2), None, "loop must be reported, not followed");
        assert_eq!(r.path(1, 2), None, "same loop seen from the other side");
        assert!(r.path(2, 1).is_some(), "untouched routes still resolve");
    }

    #[test]
    fn one_iteration_matches_best_one_hop() {
        let m = line(5);
        let r = multihop_routes(&m, 2);
        assert_eq!(r.iterations, 1);
        assert_eq!(r.max_hops, 2);
        for i in 0..5 {
            for j in 0..5 {
                if i == j {
                    continue;
                }
                let expected = m.best_path_with_one_hop(i, j);
                assert_eq!(r.cost_of(i, j), expected, "({i},{j})");
            }
        }
        // 0→2 goes via 1.
        assert_eq!(r.cost_of(0, 2), 20.0);
        assert_eq!(r.next_of(0, 2), 1);
    }

    #[test]
    fn log_iterations_reach_full_shortest_paths() {
        let m = line(6);
        // 6 nodes: longest useful path has 5 hops → 3 iterations (≤8 hops).
        let r = multihop_routes(&m, 6);
        assert_eq!(r.iterations, 3);
        let apsp = m.all_pairs_shortest();
        for i in 0..6 {
            for j in 0..6 {
                assert!(
                    (r.cost_of(i, j) - apsp[i * 6 + j]).abs() < 1e-9,
                    "({i},{j}): {} vs {}",
                    r.cost_of(i, j),
                    apsp[i * 6 + j]
                );
            }
        }
        assert_eq!(r.cost_of(0, 5), 50.0);
    }

    #[test]
    fn hop_bounds_respected() {
        let m = line(9);
        for hops in [1usize, 2, 4, 8] {
            let r = multihop_routes(&m, hops);
            let reference = bounded_shortest_paths(&m, r.max_hops);
            for i in 0..9 {
                for j in 0..9 {
                    assert!(
                        (r.cost_of(i, j) - reference[i * 9 + j]).abs() < 1e-9,
                        "hops={hops} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn next_hop_pointers_reconstruct_shortest_paths() {
        let m = line(8);
        let r = multihop_routes(&m, 8);
        for i in 0..8 {
            for j in 0..8 {
                if i == j || !r.cost_of(i, j).is_finite() {
                    continue;
                }
                let path = r.path(i, j).expect("forwarding must terminate");
                assert_eq!(*path.first().unwrap(), i);
                assert_eq!(*path.last().unwrap(), j);
                assert!(path.len() - 1 <= r.max_hops, "path too long");
                // Walking the path over *direct* links must cost exactly
                // the claimed amount.
                let walked: f64 = path.windows(2).map(|w| m.rtt(w[0], w[1])).sum();
                assert!(
                    (walked - r.cost_of(i, j)).abs() < 1e-9,
                    "({i},{j}): walked {walked}, claimed {}",
                    r.cost_of(i, j)
                );
            }
        }
    }

    #[test]
    fn random_matrices_match_reference() {
        use apor_topology::{PlanetLabParams, Topology};
        let t = Topology::generate(&PlanetLabParams {
            n: 24,
            seed: 33,
            ..Default::default()
        });
        let r = multihop_routes(&t.latency, 4);
        let reference = bounded_shortest_paths(&t.latency, 4);
        for i in 0..24 {
            for j in 0..24 {
                assert!(
                    (r.cost_of(i, j) - reference[i * 24 + j]).abs() < 1e-6,
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn communication_scales_as_n_sqrt_n_log_n() {
        // Per-node bytes for all-pairs shortest paths must grow ~n^1.5·log n,
        // clearly sublinear in the n²·log n a full-mesh iteration would cost.
        let per_node = |n: usize| {
            let m = LatencyMatrix::uniform(n, 10.0);
            let r = multihop_routes(&m, n);
            r.mean_bytes_sent()
        };
        let b100 = per_node(100);
        let b400 = per_node(400);
        // n: ×4 ⇒ n√n: ×8 (log factor adds a bit). A full-mesh n² scheme
        // would give ×16+.
        let ratio = b400 / b100;
        assert!(
            (6.0..13.0).contains(&ratio),
            "scaling ratio {ratio}, want ~8–9"
        );
    }

    #[test]
    fn max_hops_one_is_direct_only() {
        let m = line(4);
        let r = multihop_routes(&m, 1);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.max_hops, 1);
        assert_eq!(r.cost_of(0, 3), 1000.0);
        assert_eq!(r.next_of(0, 3), 3);
        assert_eq!(r.mean_bytes_sent(), 0.0);
    }

    #[test]
    fn unreachable_pairs_stay_unreachable() {
        let mut m = LatencyMatrix::unreachable(4);
        m.set_rtt(0, 1, 5.0);
        m.set_rtt(2, 3, 5.0);
        let r = multihop_routes(&m, 4);
        assert!(r.cost_of(0, 2).is_infinite());
        assert!(r.path(0, 2).is_none());
        assert_eq!(r.cost_of(0, 1), 5.0);
    }
}
