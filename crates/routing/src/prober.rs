//! Link monitoring: RON's probing discipline (section 5), extended with
//! the deployment section's sub-quadratic probing plane.
//!
//! Under [`ProbePolicy::FullMesh`] every node probes every other node
//! (the paper's baseline: measurement stays full-mesh, only route
//! *computation* traffic is reduced by the quorum scheme). Probes go
//! out every `p = 30 s` per peer, spread evenly across the interval.
//! After a first lost probe the prober switches to rapid re-probing so
//! that `probes_for_failure` consecutive losses — and hence failure
//! detection — complete "within 1 probing period".
//!
//! Under [`ProbePolicy::Entitled`] a node probes only its `~2√n`
//! rendezvous servers plus a rotating constant-size sample of other
//! peers, each at an adaptive per-link rate
//! ([`AdaptiveProbeRate`](crate::adaptive::AdaptiveProbeRate)), and
//! emits [`ProbeBatch`](apor_linkstate::Message::ProbeBatch) frames: a
//! ping plus, once the link is measured, a `Gauge` item carrying this
//! side's RTT/loss estimate, which the receiver may *adopt* as its own
//! reverse entry (link costs are symmetric, paper section 3) instead of
//! probing back. Per-node probe bytes then grow with `√n`, not `n`.
//! Coverage is preserved: any pair (i, j) shares a rendezvous server
//! `s`, both legs i→s and j→s are entitled, so `s` can always recommend
//! the route via itself or better.

use crate::adaptive::{AdaptiveProbeRate, RateSample};
use crate::config::{ProbePolicy, ProtocolConfig};
use apor_linkstate::{LinkEntry, LinkEstimator, ProbeItem, ProbeOutcome};
use apor_quorum::Grid;
use apor_telemetry::{Gauge, Histogram, SpanKind, Telemetry, TraceCtx, Tracer};

/// An instruction from the prober to the node runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeAction {
    /// Transmit a probe to `to` carrying `seq`
    /// ([`ProbePolicy::FullMesh`]).
    SendProbe {
        /// Peer to probe.
        to: usize,
        /// Sequence number to carry (echoed by the reply).
        seq: u32,
    },
    /// Transmit a probe batch to `to` ([`ProbePolicy::Entitled`]): a
    /// ping plus optionally this side's reverse-path gauge.
    SendBatch {
        /// Peer to probe.
        to: usize,
        /// Frame items (ping first).
        items: Vec<ProbeItem>,
    },
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    seq: u32,
    sent_at: f64,
}

/// Per-target probing state.
#[derive(Debug)]
struct TargetState {
    peer: usize,
    /// Entitled targets persist; sampled ones rotate out each epoch.
    entitled: bool,
    estimator: LinkEstimator,
    rate: AdaptiveProbeRate,
    next_probe_at: f64,
    pending: Option<Pending>,
}

/// A reverse-path estimate adopted from a peer's `Gauge` item.
#[derive(Debug, Clone, Copy)]
struct Adopted {
    peer: usize,
    rtt_ms: u16,
    loss: f32,
    heard_at: f64,
}

/// The per-node probing state machine.
#[derive(Debug)]
pub struct Prober {
    me: usize,
    n: usize,
    config: ProtocolConfig,
    targets: Vec<TargetState>,
    /// Reverse-path entries adopted from peers' gauges, sorted by peer.
    adopted: Vec<Adopted>,
    adopted_cap: usize,
    next_seq: u32,
    /// Sample-rotation epoch counter ([`ProbePolicy::Entitled`]).
    sample_epoch: u64,
    sample_rotate_at: f64,
    probe_rtt_us: Option<Histogram>,
    probe_targets: Option<Gauge>,
    probe_sampled: Option<Gauge>,
    tracer: Tracer,
    /// Episode context adopted at view install; the first probe wave
    /// after it records a `Reprobe` span and clears the context, and
    /// outgoing batches carry it on the wire until then.
    trace_ctx: Option<TraceCtx>,
    /// Peers whose links transitioned alive → dead since the last
    /// [`Prober::take_link_losses`] drain (the 5-failure rule firing).
    link_losses: Vec<usize>,
}

impl Prober {
    /// A prober for node `me` of `n`, starting at `now`. First probes are
    /// spread deterministically across one probing interval so a fleet of
    /// nodes does not burst in lockstep.
    #[must_use]
    pub fn new(me: usize, n: usize, config: ProtocolConfig, now: f64) -> Self {
        config.validate();
        let mut prober = Prober {
            me,
            n,
            targets: Vec::new(),
            adopted: Vec::new(),
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            adopted_cap: 4 * (n as f64).sqrt() as usize + 64,
            next_seq: 0,
            sample_epoch: 0,
            sample_rotate_at: now + config.probe_interval_s,
            probe_rtt_us: None,
            probe_targets: None,
            probe_sampled: None,
            tracer: Tracer::disabled(),
            trace_ctx: None,
            link_losses: Vec::new(),
            config,
        };
        match prober.config.probe_policy {
            ProbePolicy::FullMesh => {
                prober.targets = (0..n)
                    .filter(|&j| j != me)
                    .map(|j| prober.make_target(j, true, now))
                    .collect();
            }
            ProbePolicy::Entitled => {
                let mut entitled = Grid::new(n).rendezvous_servers(me);
                entitled.sort_unstable();
                entitled.dedup();
                prober.targets = entitled
                    .into_iter()
                    .map(|j| prober.make_target(j, true, now))
                    .collect();
                prober.rotate_sample(now);
            }
        }
        prober.publish_target_gauges();
        prober
    }

    /// Attach a telemetry handle: probe RTTs enter the
    /// `routing/probe_rtt_us` histogram and the target-set sizes are
    /// published as `probe_targets` / `probe_sampled` gauges.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.probe_rtt_us = Some(telemetry.histogram("routing", "probe_rtt_us"));
        self.probe_targets = Some(telemetry.gauge("routing", "probe_targets"));
        self.probe_sampled = Some(telemetry.gauge("routing", "probe_sampled"));
        self.publish_target_gauges();
        self
    }

    /// Attach a causal tracer (disabled by default; see
    /// [`Prober::note_episode`]).
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Mark the next probe wave as part of a convergence episode: the
    /// first poll that emits probes records a `Reprobe` span under the
    /// episode and batches carry `ctx` on the wire (see
    /// [`Prober::poll_traced`]).
    pub fn note_episode(&mut self, ctx: TraceCtx) {
        if self.tracer.enabled() {
            self.trace_ctx = Some(ctx);
        }
    }

    fn make_target(&self, peer: usize, entitled: bool, now: f64) -> TargetState {
        // Deterministic per-pair phase in (0, p], quantized to 0.5 s
        // slots. The quantum matters: 0.5 s is dyadic, so with the
        // default half-second-multiple timings every probe deadline is
        // an *exact* f64 multiple of 0.5 s past the node's start, and a
        // driver polling on a fixed 0.5 s tick fires at bit-identical
        // instants to one waking on `next_wake` — the replay test's
        // guarantee. Slot 0 is skipped: a deadline *at* creation time
        // would fire immediately under a coalesced driver but only at
        // the first tick under a polling one.
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let slots = ((self.config.probe_interval_s * 2.0) as usize).max(1);
        let phase = ((self.me * 31 + peer * 17) % slots + 1) as f64 * 0.5;
        TargetState {
            peer,
            entitled,
            estimator: LinkEstimator::with_params(
                self.config.ewma_alpha,
                self.config.probes_for_failure,
                LinkEstimator::DEFAULT_WINDOW,
            ),
            rate: AdaptiveProbeRate::new(&self.config, self.config.probe_interval_s),
            next_probe_at: now + phase,
            pending: None,
        }
    }

    fn publish_target_gauges(&self) {
        if let Some(g) = &self.probe_targets {
            g.set(self.targets.len() as u64);
        }
        if let Some(g) = &self.probe_sampled {
            g.set(self.targets.iter().filter(|t| !t.entitled).count() as u64);
        }
    }

    fn target(&self, peer: usize) -> Option<usize> {
        self.targets.binary_search_by_key(&peer, |t| t.peer).ok()
    }

    /// Replace the sampled (non-entitled) targets with the next epoch's
    /// deterministic draw of `probe_sample_budget` peers.
    fn rotate_sample(&mut self, now: f64) {
        self.sample_epoch += 1;
        self.sample_rotate_at = now + self.config.probe_interval_s;
        self.targets.retain(|t| t.entitled);
        let budget = self
            .config
            .probe_sample_budget
            .min(self.n.saturating_sub(self.targets.len() + 1));
        let mut picked: Vec<usize> = Vec::with_capacity(budget);
        let mut attempt: u64 = 0;
        while picked.len() < budget && attempt < 64 * budget as u64 {
            let h =
                splitmix64((self.me as u64) ^ self.sample_epoch.rotate_left(17) ^ (attempt << 40));
            attempt += 1;
            let peer = (h % self.n as u64) as usize;
            if peer == self.me
                || picked.contains(&peer)
                || self.targets.binary_search_by_key(&peer, |t| t.peer).is_ok()
            {
                continue;
            }
            picked.push(peer);
        }
        for peer in picked {
            let mut t = self.make_target(peer, false, now);
            // Sampled links are short-lived: probe within the epoch.
            // Same 0.5 s phase quantum as `make_target`; slot 0 is fine
            // here because rotation happens *inside* a poll, which goes
            // on to emit anything already due in the same call.
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            let slots = ((self.config.rapid_probe_interval_s * 2.0) as usize).max(1);
            t.next_probe_at = now + ((self.me * 31 + peer * 17) % slots) as f64 * 0.5;
            self.targets.push(t);
        }
        self.targets.sort_unstable_by_key(|t| t.peer);
        self.publish_target_gauges();
    }

    /// Advance to `now`: rotate the sample epoch when due, expire
    /// timed-out probes (recording losses and arming rapid re-probes)
    /// and emit the probes now due.
    pub fn poll(&mut self, now: f64) -> Vec<ProbeAction> {
        if self.config.probe_policy == ProbePolicy::Entitled && now >= self.sample_rotate_at {
            self.rotate_sample(now);
        }
        let mut actions = Vec::new();
        let batch = self.config.probe_policy == ProbePolicy::Entitled;
        for t in &mut self.targets {
            // Expire an outstanding probe. The comparison must be the
            // exact expression `next_wake` computes the deadline with —
            // `now - sent_at >= timeout` can round *below* the timeout
            // at the woken instant, which would make a coalesced driver
            // re-arm a zero-delay timer forever.
            if let Some(p) = t.pending {
                if now >= p.sent_at + self.config.probe_timeout_s {
                    let was_alive = t.estimator.alive();
                    t.estimator.record(ProbeOutcome::Timeout);
                    if was_alive && !t.estimator.alive() {
                        // The 5-failure rule just declared this link
                        // dead; queue it for the route-retraction drain.
                        self.link_losses.push(t.peer);
                    }
                    t.rate.on_sample(RateSample::Loss);
                    t.pending = None;
                    // Rapid failure detection: re-probe quickly while the
                    // loss burst lasts.
                    let rapid = p.sent_at + self.config.rapid_probe_interval_s;
                    if rapid < t.next_probe_at {
                        t.next_probe_at = rapid.max(now);
                    }
                }
            }
            // Emit a due probe.
            if t.pending.is_none() && now >= t.next_probe_at {
                let seq = self.next_seq;
                self.next_seq = self.next_seq.wrapping_add(1);
                t.pending = Some(Pending { seq, sent_at: now });
                t.next_probe_at = now + t.rate.interval_s();
                if batch {
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    let mut items = vec![ProbeItem::Ping {
                        seq,
                        sent_ms: (now * 1000.0) as u32,
                    }];
                    let e = t.estimator.to_entry();
                    if e.alive {
                        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                        items.push(ProbeItem::Gauge {
                            rtt_ms: e.latency_ms,
                            loss_pm: (f64::from(e.loss) * 1000.0) as u16,
                        });
                    }
                    actions.push(ProbeAction::SendBatch { to: t.peer, items });
                } else {
                    actions.push(ProbeAction::SendProbe { to: t.peer, seq });
                }
            }
        }
        actions
    }

    /// [`Prober::poll`], plus episode tracing: when a context armed by
    /// [`Prober::note_episode`] is pending and this poll emits probes,
    /// a `Reprobe` span is recorded (aux = probes emitted), the context
    /// is consumed and returned so the driver can attach it to the
    /// outgoing batch frames. The plain `poll` stays the traced-off
    /// hot path — this wrapper adds no work when no context is armed.
    pub fn poll_traced(&mut self, now: f64) -> (Vec<ProbeAction>, Option<TraceCtx>) {
        let actions = self.poll(now);
        if self.trace_ctx.is_none() || actions.is_empty() {
            return (actions, None);
        }
        let ctx = self.trace_ctx.take();
        if let Some(c) = ctx {
            #[allow(clippy::cast_possible_truncation)]
            self.tracer
                .instant(SpanKind::Reprobe, c.episode, 0, actions.len() as u32, now);
        }
        (actions, ctx)
    }

    /// Drain the peers whose direct links have transitioned alive → dead
    /// since the last call. The overlay feeds these into
    /// [`QuorumRouter::on_link_loss`](crate::QuorumRouter::on_link_loss)
    /// so the retraction (and seqno bump) propagates on the very next
    /// routing tick instead of waiting for the row diff to notice.
    pub fn take_link_losses(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.link_losses)
    }

    /// Record a probe reply from `peer` carrying `seq`, received at `now`.
    /// Replies that match no outstanding probe (late, duplicated, or
    /// spoofed) are ignored.
    pub fn on_reply(&mut self, peer: usize, seq: u32, now: f64) {
        if peer >= self.n || peer == self.me {
            return;
        }
        let Some(i) = self.target(peer) else { return };
        let t = &mut self.targets[i];
        let Some(p) = t.pending else { return };
        if p.seq != seq {
            return;
        }
        t.pending = None;
        let rtt_ms = (now - p.sent_at) * 1000.0;
        t.estimator.record(ProbeOutcome::Reply { rtt_ms });
        t.rate.on_sample(RateSample::Reply { latency_ms: rtt_ms });
        if let Some(h) = &self.probe_rtt_us {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            h.observe(((now - p.sent_at) * 1e6).max(1.0) as u64);
        }
    }

    /// Adopt a peer's reverse-path gauge (its RTT/loss estimate of the
    /// link to us) as our own entry for `peer`, unless we measure that
    /// link ourselves. Symmetric-cost assumption, paper section 3.
    pub fn adopt_gauge(&mut self, peer: usize, rtt_ms: u16, loss_pm: u16, now: f64) {
        if peer >= self.n || peer == self.me || self.target(peer).is_some() {
            return;
        }
        let entry = Adopted {
            peer,
            rtt_ms,
            loss: f32::from(loss_pm.min(1000)) / 1000.0,
            heard_at: now,
        };
        match self.adopted.binary_search_by_key(&peer, |a| a.peer) {
            Ok(i) => self.adopted[i] = entry,
            Err(i) => {
                if self.adopted.len() >= self.adopted_cap {
                    // Shed the stalest adoption to stay bounded.
                    if let Some((stalest, _)) = self
                        .adopted
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.heard_at.total_cmp(&b.1.heard_at))
                    {
                        self.adopted.remove(stalest);
                    }
                }
                let i = self
                    .adopted
                    .binary_search_by_key(&peer, |a| a.peer)
                    .unwrap_err()
                    .min(i);
                self.adopted.insert(i, entry);
            }
        }
    }

    /// Age beyond which an adopted gauge is no longer trusted: two of
    /// the sender's maximum probe intervals (it gauges on every probe).
    fn adopt_expiry_s(&self) -> f64 {
        2.0 * self.config.probe_interval_max_s
    }

    /// The earliest time at which [`poll`](Self::poll) could have work.
    #[must_use]
    pub fn next_wake(&self, now: f64) -> f64 {
        let mut wake = if self.config.probe_policy == ProbePolicy::Entitled {
            self.sample_rotate_at
        } else {
            f64::INFINITY
        };
        for t in &self.targets {
            if let Some(p) = t.pending {
                wake = wake.min(p.sent_at + self.config.probe_timeout_s);
            } else {
                wake = wake.min(t.next_probe_at);
            }
        }
        wake.max(now)
    }

    /// Is the direct link to `j` currently considered alive?
    #[must_use]
    pub fn alive(&self, j: usize) -> bool {
        j == self.me
            || self
                .target(j)
                .is_some_and(|i| self.targets[i].estimator.alive())
    }

    /// Smoothed RTT to `j`, ms.
    #[must_use]
    pub fn latency_ms(&self, j: usize) -> Option<f64> {
        self.targets[self.target(j)?].estimator.latency_ms()
    }

    /// Borrow the estimator for `j`, when `j` is a probe target.
    #[must_use]
    pub fn estimator(&self, j: usize) -> Option<&LinkEstimator> {
        Some(&self.targets[self.target(j)?].estimator)
    }

    /// Inject an estimator for `j` — used on membership change to carry
    /// latency/liveness history over to a freshly built prober, so a view
    /// bump does not blind the overlay for a probing interval. Ignored
    /// when `j` is not a probe target of this prober.
    pub fn set_estimator(&mut self, j: usize, est: LinkEstimator) {
        assert!(j < self.n);
        if let Some(i) = self.target(j) {
            self.targets[i].estimator = est;
        }
    }

    /// Render the node's own link-state row at `now` (self entry:
    /// alive, 0 ms). Probed targets contribute their estimator entries;
    /// fresh adopted gauges fill in reverse paths we do not probe.
    #[must_use]
    pub fn own_row(&self, now: f64) -> Vec<LinkEntry> {
        let mut row = vec![LinkEntry::dead(); self.n];
        row[self.me] = LinkEntry::live(0, 0.0);
        for a in &self.adopted {
            if now - a.heard_at <= self.adopt_expiry_s() {
                row[a.peer] = LinkEntry::live(a.rtt_ms, a.loss);
            }
        }
        for t in &self.targets {
            row[t.peer] = t.estimator.to_entry();
        }
        row
    }

    /// Number of probed peers currently considered failed (the
    /// concurrent link failure count of figure 8, measured by the
    /// overlay itself).
    #[must_use]
    pub fn concurrent_failures(&self) -> usize {
        self.targets.iter().filter(|t| !t.estimator.alive()).count()
    }
}

/// SplitMix64 — the deterministic hash behind sample rotation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quorum_cfg() -> ProtocolConfig {
        ProtocolConfig::quorum()
    }

    fn entitled_cfg() -> ProtocolConfig {
        ProtocolConfig::quorum().with_subquadratic_probing(120.0)
    }

    fn send_probes(actions: &[ProbeAction]) -> Vec<(usize, u32)> {
        actions
            .iter()
            .map(|a| match a {
                ProbeAction::SendProbe { to, seq } => (*to, *seq),
                ProbeAction::SendBatch { to, items } => {
                    let seq = items
                        .iter()
                        .find_map(|i| match i {
                            ProbeItem::Ping { seq, .. } => Some(*seq),
                            _ => None,
                        })
                        .expect("batch carries a ping");
                    (*to, seq)
                }
            })
            .collect()
    }

    /// Drive a prober against a perfect 40 ms-RTT peer and check cadence.
    #[test]
    fn steady_state_probing_cadence() {
        let cfg = quorum_cfg();
        let mut p = Prober::new(0, 2, cfg.clone(), 0.0);
        let mut sent_times = Vec::new();
        let mut t = 0.0;
        while t < 200.0 {
            for (to, seq) in send_probes(&p.poll(t)) {
                assert_eq!(to, 1);
                sent_times.push(t);
                // Reply 40 ms later (within the same tick resolution).
                p.on_reply(1, seq, t + 0.040);
            }
            t += 1.0;
        }
        assert!(
            (6..=8).contains(&sent_times.len()),
            "expected ~7 probes in 200 s, got {}",
            sent_times.len()
        );
        for w in sent_times.windows(2) {
            let gap = w[1] - w[0];
            assert!(
                (cfg.probe_interval_s - 1.0..=cfg.probe_interval_s + 1.0).contains(&gap),
                "gap {gap}"
            );
        }
        assert!(p.alive(1));
        let l = p.latency_ms(1).unwrap();
        assert!((l - 40.0).abs() < 0.5, "latency {l}");
    }

    /// With the peer silent, 5 losses accumulate within one probing
    /// interval of the first loss (the paper's rapid failure detection).
    #[test]
    fn detects_failure_within_one_probing_interval() {
        let cfg = quorum_cfg();
        let mut p = Prober::new(0, 2, cfg.clone(), 0.0);
        // Establish liveness first.
        let mut t = 0.0;
        let mut first_unanswered: Option<f64> = None;
        let mut died_at: Option<f64> = None;
        while t < 300.0 && died_at.is_none() {
            for (_, seq) in send_probes(&p.poll(t)) {
                if t < 60.0 {
                    p.on_reply(1, seq, t + 0.02);
                } else if first_unanswered.is_none() {
                    first_unanswered = Some(t);
                }
            }
            if first_unanswered.is_some() && !p.alive(1) {
                died_at = Some(t);
            }
            t += 0.5;
        }
        let first = first_unanswered.expect("a probe went unanswered");
        let died = died_at.expect("link should die");
        assert!(
            died - first <= cfg.probe_interval_s + cfg.probe_timeout_s,
            "death took {} s after first loss",
            died - first
        );
    }

    #[test]
    fn recovers_after_failure() {
        let mut p = Prober::new(0, 2, quorum_cfg(), 0.0);
        let mut t = 0.0;
        // Phase 1: alive. Phase 2 (60–150 s): silent → dead. Phase 3: replies again.
        while t < 400.0 {
            for (_, seq) in send_probes(&p.poll(t)) {
                if !(60.0..=150.0).contains(&t) {
                    p.on_reply(1, seq, t + 0.02);
                }
            }
            t += 0.5;
        }
        assert!(p.alive(1), "link must recover once replies resume");
        assert_eq!(p.concurrent_failures(), 0);
    }

    /// The loss drain reports each alive → dead transition exactly once,
    /// even across a death-recovery-death cycle.
    #[test]
    fn link_loss_drain_fires_once_per_death() {
        let mut p = Prober::new(0, 2, quorum_cfg(), 0.0);
        let mut losses = Vec::new();
        let mut t = 0.0;
        // Alive, silent (death 1), alive again, silent again (death 2).
        while t < 700.0 {
            for (_, seq) in send_probes(&p.poll(t)) {
                if !(60.0..=150.0).contains(&t) && !(400.0..=500.0).contains(&t) {
                    p.on_reply(1, seq, t + 0.02);
                }
            }
            losses.extend(p.take_link_losses());
            t += 0.5;
        }
        assert_eq!(losses, vec![1, 1], "two transitions, two drain entries");
        assert!(p.take_link_losses().is_empty(), "drain empties the queue");
    }

    #[test]
    fn late_or_bogus_replies_ignored() {
        let cfg = quorum_cfg();
        let mut p = Prober::new(0, 3, cfg.clone(), 0.0);
        // Force a probe out.
        let mut sent = None;
        let mut t = 0.0;
        while sent.is_none() {
            for (to, seq) in send_probes(&p.poll(t)) {
                if to == 1 {
                    sent = Some((seq, t));
                }
            }
            t += 0.5;
        }
        let (seq, at) = sent.unwrap();
        // Wrong seq: ignored.
        p.on_reply(1, seq.wrapping_add(9), at + 0.01);
        assert_eq!(p.latency_ms(1), None);
        // Reply from self / out-of-range peer: ignored, no panic.
        p.on_reply(0, seq, at + 0.01);
        p.on_reply(99, seq, at + 0.01);
        // Correct reply: accepted.
        p.on_reply(1, seq, at + 0.05);
        assert!(p.latency_ms(1).is_some());
        // Duplicate of the same reply: ignored.
        p.on_reply(1, seq, at + 3.0);
        let l = p.latency_ms(1).unwrap();
        assert!((l - 50.0).abs() < 1.0);
    }

    #[test]
    fn own_row_shape() {
        let mut p = Prober::new(1, 3, quorum_cfg(), 0.0);
        let row = p.own_row(0.0);
        assert_eq!(row.len(), 3);
        assert!(row[1].alive && row[1].latency_ms == 0);
        assert!(
            !row[0].alive && !row[2].alive,
            "unmeasured links start dead"
        );
        // After replies, entries come alive.
        let mut t = 0.0;
        while t < 40.0 {
            for (to, seq) in send_probes(&p.poll(t)) {
                p.on_reply(to, seq, t + 0.03);
            }
            t += 0.5;
        }
        let row = p.own_row(t);
        assert!(row[0].alive && row[2].alive);
        assert_eq!(row[0].latency_ms, 30);
    }

    #[test]
    fn initial_probes_spread_over_interval() {
        let cfg = quorum_cfg();
        let n = 50;
        let mut p = Prober::new(0, n, cfg.clone(), 0.0);
        // Collect each peer's first probe time at 1 s resolution.
        let mut first = vec![f64::NAN; n];
        let mut t = 0.0;
        while t <= cfg.probe_interval_s {
            for (to, seq) in send_probes(&p.poll(t)) {
                if first[to].is_nan() {
                    first[to] = t;
                }
                p.on_reply(to, seq, t + 0.01);
            }
            t += 1.0;
        }
        let early = (1..n).filter(|&j| first[j] < 10.0).count();
        let late = (1..n).filter(|&j| first[j] >= 20.0).count();
        assert!(
            early > 5 && late > 5,
            "probes not spread: {early} early, {late} late"
        );
    }

    #[test]
    fn next_wake_is_sound() {
        let mut p = Prober::new(0, 4, quorum_cfg(), 0.0);
        let w = p.next_wake(0.0);
        assert!(w >= 0.0 && w.is_finite());
        // Polling exactly at wake time must do something eventually.
        let mut t = w;
        let mut emitted = 0;
        for _ in 0..10 {
            emitted += p.poll(t).len();
            t = p.next_wake(t) + 1e-6;
        }
        assert!(
            emitted >= 3,
            "probes to all 3 peers expected, got {emitted}"
        );
    }

    #[test]
    fn concurrent_failures_counts_dead_links() {
        let mut p = Prober::new(0, 4, quorum_cfg(), 0.0);
        let mut t = 0.0;
        while t < 200.0 {
            for (to, seq) in send_probes(&p.poll(t)) {
                if to != 2 {
                    p.on_reply(to, seq, t + 0.02);
                }
            }
            t += 0.5;
        }
        // Peer 2 never answered; peers 1 and 3 are fine.
        assert_eq!(p.concurrent_failures(), 1);
        assert!(!p.alive(2));
    }

    // ------------------------------------------------------------------
    // Entitled (sub-quadratic) policy
    // ------------------------------------------------------------------

    #[test]
    fn entitled_targets_are_o_sqrt_n() {
        let n = 1024;
        let cfg = entitled_cfg();
        let p = Prober::new(17, n, cfg.clone(), 0.0);
        let expected = Grid::new(n).rendezvous_servers(17).len() + cfg.probe_sample_budget;
        assert_eq!(p.targets.len(), expected);
        assert!(
            p.targets.len() <= 4 * (n as f64).sqrt() as usize + cfg.probe_sample_budget,
            "target set must stay O(√n), got {}",
            p.targets.len()
        );
    }

    #[test]
    fn entitled_emits_batches_with_gauges() {
        let mut p = Prober::new(0, 16, entitled_cfg(), 0.0);
        let mut t = 0.0;
        let mut saw_gauge = false;
        while t < 200.0 {
            for a in p.poll(t) {
                let ProbeAction::SendBatch { to, items } = a else {
                    panic!("entitled probing must batch");
                };
                let seq = items
                    .iter()
                    .find_map(|i| match i {
                        ProbeItem::Ping { seq, .. } => Some(*seq),
                        _ => None,
                    })
                    .expect("ping present");
                saw_gauge |= items.iter().any(|i| matches!(i, ProbeItem::Gauge { .. }));
                p.on_reply(to, seq, t + 0.02);
            }
            t += 0.5;
        }
        assert!(saw_gauge, "measured links gauge their reverse path");
    }

    #[test]
    fn sample_rotation_is_bounded_and_deterministic() {
        let n = 256;
        let cfg = entitled_cfg();
        let mut a = Prober::new(3, n, cfg.clone(), 0.0);
        let mut b = Prober::new(3, n, cfg.clone(), 0.0);
        for epoch in 0..5 {
            let t = f64::from(epoch) * cfg.probe_interval_s + 0.1;
            a.poll(t);
            b.poll(t);
            let sa: Vec<usize> = a
                .targets
                .iter()
                .filter(|t| !t.entitled)
                .map(|t| t.peer)
                .collect();
            let sb: Vec<usize> = b
                .targets
                .iter()
                .filter(|t| !t.entitled)
                .map(|t| t.peer)
                .collect();
            assert_eq!(sa, sb, "sample draw must be deterministic");
            assert_eq!(sa.len(), cfg.probe_sample_budget);
        }
    }

    #[test]
    fn adopted_gauges_fill_own_row_and_expire() {
        let cfg = entitled_cfg();
        let mut p = Prober::new(0, 64, cfg.clone(), 0.0);
        // Pick a peer that is neither entitled nor currently sampled.
        let outsider = (1..64)
            .find(|&j| p.target(j).is_none())
            .expect("some peer is untargeted");
        p.adopt_gauge(outsider, 25, 10, 5.0);
        let row = p.own_row(6.0);
        assert!(row[outsider].alive);
        assert_eq!(row[outsider].latency_ms, 25);
        // Expired adoptions drop out of the row.
        let late = 5.0 + 2.0 * cfg.probe_interval_max_s + 1.0;
        assert!(!p.own_row(late)[outsider].alive);
        // Gauges for probed targets are ignored (we trust our own probe).
        let target = p.targets[0].peer;
        p.adopt_gauge(target, 1, 0, 5.0);
        assert!(!p.own_row(6.0)[target].alive || p.latency_ms(target).is_some());
    }
}
