//! Link monitoring: RON's probing discipline (section 5).
//!
//! Every node probes every other node (measurement stays full-mesh in both
//! algorithms — only route *computation* traffic is reduced by the quorum
//! scheme). Probes go out every `p = 30 s` per peer, spread evenly across
//! the interval. After a first lost probe the prober switches to rapid
//! re-probing so that `probes_for_failure` consecutive losses — and hence
//! failure detection — complete "within 1 probing period". A dead link
//! keeps being probed at the normal rate so recovery is noticed.

use crate::config::ProtocolConfig;
use apor_linkstate::{LinkEntry, LinkEstimator, ProbeOutcome};

/// An instruction from the prober to the node runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProbeAction {
    /// Transmit a probe to `to` carrying `seq`.
    SendProbe {
        /// Peer to probe.
        to: usize,
        /// Sequence number to carry (echoed by the reply).
        seq: u32,
    },
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    seq: u32,
    sent_at: f64,
}

/// The per-node probing state machine.
#[derive(Debug)]
pub struct Prober {
    me: usize,
    n: usize,
    config: ProtocolConfig,
    estimators: Vec<LinkEstimator>,
    next_probe_at: Vec<f64>,
    pending: Vec<Option<Pending>>,
    next_seq: u32,
}

impl Prober {
    /// A prober for node `me` of `n`, starting at `now`. First probes are
    /// spread deterministically across one probing interval so a fleet of
    /// nodes does not burst in lockstep.
    #[must_use]
    pub fn new(me: usize, n: usize, config: ProtocolConfig, now: f64) -> Self {
        config.validate();
        let spread = config.probe_interval_s;
        let next_probe_at = (0..n)
            .map(|j| {
                // Deterministic per-pair phase in [0, p).
                let phase = ((me * 31 + j * 17) % 1000) as f64 / 1000.0;
                now + phase * spread
            })
            .collect();
        Prober {
            me,
            n,
            estimators: (0..n)
                .map(|_| {
                    LinkEstimator::with_params(
                        config.ewma_alpha,
                        config.probes_for_failure,
                        LinkEstimator::DEFAULT_WINDOW,
                    )
                })
                .collect(),
            config,
            next_probe_at,
            pending: vec![None; n],
            next_seq: 0,
        }
    }

    /// Advance to `now`: expire timed-out probes (recording losses and
    /// arming rapid re-probes) and emit the probes now due.
    pub fn poll(&mut self, now: f64) -> Vec<ProbeAction> {
        let mut actions = Vec::new();
        for j in 0..self.n {
            if j == self.me {
                continue;
            }
            // Expire an outstanding probe.
            if let Some(p) = self.pending[j] {
                if now - p.sent_at >= self.config.probe_timeout_s {
                    self.estimators[j].record(ProbeOutcome::Timeout);
                    self.pending[j] = None;
                    // Rapid failure detection: re-probe quickly while the
                    // loss burst lasts.
                    let rapid = p.sent_at + self.config.rapid_probe_interval_s;
                    if rapid < self.next_probe_at[j] {
                        self.next_probe_at[j] = rapid.max(now);
                    }
                }
            }
            // Emit a due probe.
            if self.pending[j].is_none() && now >= self.next_probe_at[j] {
                let seq = self.next_seq;
                self.next_seq = self.next_seq.wrapping_add(1);
                self.pending[j] = Some(Pending { seq, sent_at: now });
                self.next_probe_at[j] = now + self.config.probe_interval_s;
                actions.push(ProbeAction::SendProbe { to: j, seq });
            }
        }
        actions
    }

    /// Record a probe reply from `peer` carrying `seq`, received at `now`.
    /// Replies that match no outstanding probe (late, duplicated, or
    /// spoofed) are ignored.
    pub fn on_reply(&mut self, peer: usize, seq: u32, now: f64) {
        if peer >= self.n || peer == self.me {
            return;
        }
        let Some(p) = self.pending[peer] else {
            return;
        };
        if p.seq != seq {
            return;
        }
        self.pending[peer] = None;
        let rtt_ms = (now - p.sent_at) * 1000.0;
        self.estimators[peer].record(ProbeOutcome::Reply { rtt_ms });
    }

    /// The earliest time at which [`poll`](Self::poll) could have work.
    #[must_use]
    pub fn next_wake(&self, now: f64) -> f64 {
        let mut wake = f64::INFINITY;
        for j in 0..self.n {
            if j == self.me {
                continue;
            }
            if let Some(p) = self.pending[j] {
                wake = wake.min(p.sent_at + self.config.probe_timeout_s);
            } else {
                wake = wake.min(self.next_probe_at[j]);
            }
        }
        wake.max(now)
    }

    /// Is the direct link to `j` currently considered alive?
    #[must_use]
    pub fn alive(&self, j: usize) -> bool {
        j == self.me || self.estimators[j].alive()
    }

    /// Smoothed RTT to `j`, ms.
    #[must_use]
    pub fn latency_ms(&self, j: usize) -> Option<f64> {
        self.estimators[j].latency_ms()
    }

    /// Borrow the estimator for `j` (diagnostics).
    #[must_use]
    pub fn estimator(&self, j: usize) -> &LinkEstimator {
        &self.estimators[j]
    }

    /// Inject an estimator for `j` — used on membership change to carry
    /// latency/liveness history over to a freshly built prober, so a view
    /// bump does not blind the overlay for a probing interval.
    pub fn set_estimator(&mut self, j: usize, est: LinkEstimator) {
        assert!(j < self.n);
        self.estimators[j] = est;
    }

    /// Render the node's own link-state row (self entry: alive, 0 ms).
    #[must_use]
    pub fn own_row(&self) -> Vec<LinkEntry> {
        (0..self.n)
            .map(|j| {
                if j == self.me {
                    LinkEntry::live(0, 0.0)
                } else {
                    self.estimators[j].to_entry()
                }
            })
            .collect()
    }

    /// Number of peers currently considered failed (the concurrent link
    /// failure count of figure 8, measured by the overlay itself).
    #[must_use]
    pub fn concurrent_failures(&self) -> usize {
        (0..self.n)
            .filter(|&j| j != self.me)
            .filter(|&j| {
                // Only count links that were up at some point; a link that
                // never answered is indistinguishable from a dead peer and
                // counts too once probing has had time to conclude.
                !self.estimators[j].alive()
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quorum_cfg() -> ProtocolConfig {
        ProtocolConfig::quorum()
    }

    /// Drive a prober against a perfect 40 ms-RTT peer and check cadence.
    #[test]
    fn steady_state_probing_cadence() {
        let cfg = quorum_cfg();
        let mut p = Prober::new(0, 2, cfg.clone(), 0.0);
        let mut sent_times = Vec::new();
        let mut t = 0.0;
        while t < 200.0 {
            for a in p.poll(t) {
                let ProbeAction::SendProbe { to, seq } = a;
                assert_eq!(to, 1);
                sent_times.push(t);
                // Reply 40 ms later (within the same tick resolution).
                p.on_reply(1, seq, t + 0.040);
            }
            t += 1.0;
        }
        assert!(
            (6..=8).contains(&sent_times.len()),
            "expected ~7 probes in 200 s, got {}",
            sent_times.len()
        );
        for w in sent_times.windows(2) {
            let gap = w[1] - w[0];
            assert!(
                (cfg.probe_interval_s - 1.0..=cfg.probe_interval_s + 1.0).contains(&gap),
                "gap {gap}"
            );
        }
        assert!(p.alive(1));
        let l = p.latency_ms(1).unwrap();
        assert!((l - 40.0).abs() < 0.5, "latency {l}");
    }

    /// With the peer silent, 5 losses accumulate within one probing
    /// interval of the first loss (the paper's rapid failure detection).
    #[test]
    fn detects_failure_within_one_probing_interval() {
        let cfg = quorum_cfg();
        let mut p = Prober::new(0, 2, cfg.clone(), 0.0);
        // Establish liveness first.
        let mut t = 0.0;
        let mut first_unanswered: Option<f64> = None;
        let mut died_at: Option<f64> = None;
        while t < 300.0 && died_at.is_none() {
            for a in p.poll(t) {
                let ProbeAction::SendProbe { seq, .. } = a;
                if t < 60.0 {
                    p.on_reply(1, seq, t + 0.02);
                } else if first_unanswered.is_none() {
                    first_unanswered = Some(t);
                }
            }
            if first_unanswered.is_some() && !p.alive(1) {
                died_at = Some(t);
            }
            t += 0.5;
        }
        let first = first_unanswered.expect("a probe went unanswered");
        let died = died_at.expect("link should die");
        assert!(
            died - first <= cfg.probe_interval_s + cfg.probe_timeout_s,
            "death took {} s after first loss",
            died - first
        );
    }

    #[test]
    fn recovers_after_failure() {
        let mut p = Prober::new(0, 2, quorum_cfg(), 0.0);
        let mut t = 0.0;
        // Phase 1: alive. Phase 2 (60–150 s): silent → dead. Phase 3: replies again.
        while t < 400.0 {
            for a in p.poll(t) {
                let ProbeAction::SendProbe { seq, .. } = a;
                if !(60.0..=150.0).contains(&t) {
                    p.on_reply(1, seq, t + 0.02);
                }
            }
            t += 0.5;
        }
        assert!(p.alive(1), "link must recover once replies resume");
        assert_eq!(p.concurrent_failures(), 0);
    }

    #[test]
    fn late_or_bogus_replies_ignored() {
        let cfg = quorum_cfg();
        let mut p = Prober::new(0, 3, cfg.clone(), 0.0);
        // Force a probe out.
        let mut sent = None;
        let mut t = 0.0;
        while sent.is_none() {
            for a in p.poll(t) {
                let ProbeAction::SendProbe { to, seq } = a;
                if to == 1 {
                    sent = Some((seq, t));
                }
            }
            t += 0.5;
        }
        let (seq, at) = sent.unwrap();
        // Wrong seq: ignored.
        p.on_reply(1, seq.wrapping_add(9), at + 0.01);
        assert_eq!(p.latency_ms(1), None);
        // Reply from self / out-of-range peer: ignored, no panic.
        p.on_reply(0, seq, at + 0.01);
        p.on_reply(99, seq, at + 0.01);
        // Correct reply: accepted.
        p.on_reply(1, seq, at + 0.05);
        assert!(p.latency_ms(1).is_some());
        // Duplicate of the same reply: ignored.
        p.on_reply(1, seq, at + 3.0);
        let l = p.latency_ms(1).unwrap();
        assert!((l - 50.0).abs() < 1.0);
    }

    #[test]
    fn own_row_shape() {
        let mut p = Prober::new(1, 3, quorum_cfg(), 0.0);
        let row = p.own_row();
        assert_eq!(row.len(), 3);
        assert!(row[1].alive && row[1].latency_ms == 0);
        assert!(
            !row[0].alive && !row[2].alive,
            "unmeasured links start dead"
        );
        // After replies, entries come alive.
        let mut t = 0.0;
        while t < 40.0 {
            for a in p.poll(t) {
                let ProbeAction::SendProbe { to, seq } = a;
                p.on_reply(to, seq, t + 0.03);
            }
            t += 0.5;
        }
        let row = p.own_row();
        assert!(row[0].alive && row[2].alive);
        assert_eq!(row[0].latency_ms, 30);
    }

    #[test]
    fn initial_probes_spread_over_interval() {
        let cfg = quorum_cfg();
        let n = 50;
        let mut p = Prober::new(0, n, cfg.clone(), 0.0);
        // Collect each peer's first probe time at 1 s resolution.
        let mut first = vec![f64::NAN; n];
        let mut t = 0.0;
        while t <= cfg.probe_interval_s {
            for a in p.poll(t) {
                let ProbeAction::SendProbe { to, seq } = a;
                if first[to].is_nan() {
                    first[to] = t;
                }
                p.on_reply(to, seq, t + 0.01);
            }
            t += 1.0;
        }
        let early = (1..n).filter(|&j| first[j] < 10.0).count();
        let late = (1..n).filter(|&j| first[j] >= 20.0).count();
        assert!(
            early > 5 && late > 5,
            "probes not spread: {early} early, {late} late"
        );
    }

    #[test]
    fn next_wake_is_sound() {
        let mut p = Prober::new(0, 4, quorum_cfg(), 0.0);
        let w = p.next_wake(0.0);
        assert!(w >= 0.0 && w.is_finite());
        // Polling exactly at wake time must do something eventually.
        let mut t = w;
        let mut emitted = 0;
        for _ in 0..10 {
            emitted += p.poll(t).len();
            t = p.next_wake(t) + 1e-6;
        }
        assert!(
            emitted >= 3,
            "probes to all 3 peers expected, got {emitted}"
        );
    }

    #[test]
    fn concurrent_failures_counts_dead_links() {
        let mut p = Prober::new(0, 4, quorum_cfg(), 0.0);
        let mut t = 0.0;
        while t < 200.0 {
            for a in p.poll(t) {
                let ProbeAction::SendProbe { to, seq } = a;
                if to != 2 {
                    p.on_reply(to, seq, t + 0.02);
                }
            }
            t += 0.5;
        }
        // Peer 2 never answered; peers 1 and 3 are fine.
        assert_eq!(p.concurrent_failures(), 1);
        assert!(!p.alive(2));
    }
}
