//! Per-figure regeneration benches: each benchmark runs a reduced-scale
//! version of the code path that regenerates one paper table or figure.
//! (`cargo run -p apor-experiments` produces the full-scale numbers; these
//! benches track the *cost* of regenerating them and protect the
//! experiment pipeline from regressions.)

use apor_experiments::deployment::{self, DeploymentParams};
use apor_experiments::{fig1, fig9, lower_bound, multihop_exp};
use apor_overlay::config::Algorithm;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Figure 1: detour study on a reduced host set.
fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    g.bench_function("detour_study_n120", |b| {
        b.iter(|| {
            fig1::run(black_box(&fig1::Fig1Params {
                n: 120,
                ..Default::default()
            }))
        });
    });
    g.finish();
}

/// Figure 9: one emulation point per algorithm at n = 49.
fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    let params = fig9::Fig9Params {
        sizes: vec![49],
        duration_s: 120.0,
        warmup_s: 30.0,
        seed: 1,
    };
    g.bench_function("emulation_point_n49", |b| {
        b.iter(|| black_box(fig9::run(&params)));
    });
    g.finish();
}

/// Figures 8/10–14: the deployment pipeline at miniature scale.
fn bench_deployment(c: &mut Criterion) {
    let mut g = c.benchmark_group("deployment");
    g.sample_size(10);
    let params = DeploymentParams {
        n: 25,
        minutes: 6.0,
        warmup_s: 90.0,
        seed: 2,
        algorithm: Algorithm::Quorum,
        ..Default::default()
    };
    g.bench_function("pipeline_n25_6min", |b| {
        b.iter(|| black_box(deployment::run(&params)));
    });
    g.finish();
}

/// The multi-hop experiment (section 3 claims).
fn bench_multihop_exp(c: &mut Criterion) {
    let mut g = c.benchmark_group("multihop_exp");
    g.sample_size(10);
    let params = multihop_exp::MultiHopParams {
        sizes: vec![64],
        seed: 3,
    };
    g.bench_function("claims_n64", |b| {
        b.iter(|| black_box(multihop_exp::run(&params)));
    });
    g.finish();
}

/// Appendix A table.
fn bench_lower_bound(c: &mut Criterion) {
    let mut g = c.benchmark_group("lower_bound");
    g.bench_function("table", |b| {
        b.iter(|| black_box(lower_bound::run(&[16, 100, 400, 1600])));
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig1,
    bench_fig9,
    bench_deployment,
    bench_multihop_exp,
    bench_lower_bound
);
criterion_main!(figures);
