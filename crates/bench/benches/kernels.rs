//! Computational-kernel benchmarks: the hot paths a deployment exercises
//! every routing interval.

use apor_bench::{bench_topology, full_table, ground_truth_row};
use apor_linkstate::{LinkEntry, LinkStateMsg, LinkStateStore, LinkStateTable, Message};
use apor_quorum::{Grid, NodeId};
use apor_routing::multihop::multihop_routes;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// The perf-trajectory calibration workload: a fixed pure-integer spin
/// whose speed tracks the machine, never the code under test. The
/// regression gate divides every kernel median by this benchmark's
/// ratio so a slower CI runner does not read as a kernel regression
/// (see `apor_telemetry::regress::CALIBRATION_ID`).
fn bench_calibration(c: &mut Criterion) {
    c.bench_function("calibration/spin", |b| {
        b.iter(|| {
            let mut x = black_box(0x9E37_79B9_7F4A_7C15_u64);
            for _ in 0..4096 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
            }
            x
        });
    });
}

/// Grid construction + full rendezvous-set derivation, as performed on
/// every membership change.
fn bench_grid(c: &mut Criterion) {
    let mut g = c.benchmark_group("grid");
    for n in [100usize, 400, 1600, 10_000] {
        g.bench_with_input(BenchmarkId::new("build_and_derive", n), &n, |b, &n| {
            b.iter(|| {
                let grid = Grid::new(black_box(n));
                let mut total = 0usize;
                for i in 0..n {
                    total += grid.rendezvous_servers(i).len();
                }
                total
            });
        });
    }
    g.finish();
}

/// The round-two kernel: best one-hop for one client pair over n
/// candidate relays — executed ~4n times per node per routing interval.
fn bench_best_one_hop(c: &mut Criterion) {
    let mut g = c.benchmark_group("best_one_hop");
    for n in [100usize, 200, 400] {
        let topo = bench_topology(n);
        let table = full_table(&topo);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("pair", n), &n, |b, &n| {
            b.iter(|| table.best_one_hop(black_box(1), black_box(n - 1), 0.0, 45.0));
        });
    }
    g.finish();
}

/// A rendezvous node's full round-two duty: recommendations for every
/// pair among 2√n clients.
fn bench_round_two(c: &mut Criterion) {
    let mut g = c.benchmark_group("round_two_full");
    for n in [100usize, 196, 400] {
        let topo = bench_topology(n);
        let table = full_table(&topo);
        let grid = Grid::new(n);
        let clients = grid.rendezvous_clients(0);
        g.bench_with_input(BenchmarkId::new("server_tick", n), &n, |b, _| {
            b.iter(|| {
                let mut count = 0usize;
                for &a in &clients {
                    for &d in &clients {
                        if a != d && table.best_one_hop(a, d, 0.0, 45.0).is_some() {
                            count += 1;
                        }
                    }
                }
                black_box(count)
            });
        });
    }
    g.finish();
}

/// Wire codec throughput for the dominant message type (link state).
fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    for n in [140usize, 400, 1000] {
        let msg = Message::LinkState(LinkStateMsg {
            from: NodeId(1),
            to: NodeId(2),
            view: 1,
            round: 9,
            basis_ms: 12345,
            entries: (0..n)
                .map(|i| LinkEntry::live((i % 500) as u16, 0.01))
                .collect(),
            seqno: 0,
            retractions: vec![],
        });
        g.throughput(Throughput::Bytes(msg.wire_size() as u64));
        g.bench_with_input(BenchmarkId::new("encode", n), &msg, |b, msg| {
            b.iter(|| black_box(msg.encode()));
        });
        let bytes = msg.encode();
        g.bench_with_input(BenchmarkId::new("decode", n), &bytes, |b, bytes| {
            b.iter(|| Message::decode(black_box(bytes)).unwrap());
        });
    }
    g.finish();
}

/// One multi-hop iteration (the all-pairs splice) — the cost of the
/// section 3 extension per doubling of path length.
fn bench_multihop(c: &mut Criterion) {
    let mut g = c.benchmark_group("multihop");
    g.sample_size(10);
    for n in [50usize, 100, 200] {
        let topo = bench_topology(n);
        g.bench_with_input(BenchmarkId::new("two_hop_iteration", n), &n, |b, _| {
            b.iter(|| multihop_routes(black_box(&topo.latency), 2));
        });
    }
    g.finish();
}

/// Reference all-pairs shortest paths (Floyd–Warshall) for comparison
/// with the protocol's distributed computation.
fn bench_floyd_warshall(c: &mut Criterion) {
    let mut g = c.benchmark_group("floyd_warshall");
    g.sample_size(10);
    for n in [100usize, 200] {
        let topo = bench_topology(n);
        g.bench_with_input(BenchmarkId::new("apsp", n), &n, |b, _| {
            b.iter(|| black_box(topo.latency.all_pairs_shortest()));
        });
    }
    g.finish();
}

/// Dense table vs sparse row store on a quorum node's actual working
/// set: its own row plus its `2√n` rendezvous clients' rows. Three
/// kernels: the row merge (one client's link-state message lands), the
/// pair best-hop, and the full round-two server tick. The sparse store
/// pays an `O(log √n)` map walk per row access but allocates `O(n√n)`
/// instead of `O(n²)` — at n = 1024 the dense arm is the only one that
/// still touches a 24 MB table.
fn bench_dense_vs_sparse(c: &mut Criterion) {
    use apor_linkstate::RowStore;

    let mut g = c.benchmark_group("dense_vs_sparse");
    for n in [100usize, 400, 1024] {
        let topo = bench_topology(n);
        let grid = Grid::new(n);
        let me = 0usize;
        let mut held = grid.rendezvous_clients(me);
        held.push(me);
        held.sort_unstable();
        let rows: Vec<(usize, Vec<LinkEntry>)> = held
            .iter()
            .map(|&i| (i, ground_truth_row(&topo, i)))
            .collect();
        let mut dense = LinkStateTable::new(n);
        let mut sparse = RowStore::new(n);
        for (i, row) in &rows {
            dense.update_row(*i, row, 0.0);
            sparse.update_row(*i, row, 0.0);
        }
        let (merge_origin, merge_row) = rows[rows.len() / 2].clone();
        g.bench_with_input(BenchmarkId::new("merge_dense", n), &n, |b, _| {
            b.iter(|| dense.update_row(black_box(merge_origin), black_box(&merge_row), 1.0));
        });
        g.bench_with_input(BenchmarkId::new("merge_sparse", n), &n, |b, _| {
            b.iter(|| sparse.update_row(black_box(merge_origin), black_box(&merge_row), 1.0));
        });
        let (a, bb) = (held[0], held[held.len() - 1]);
        g.bench_with_input(BenchmarkId::new("best_hop_dense", n), &n, |b, _| {
            b.iter(|| dense.best_one_hop(black_box(a), black_box(bb), 1.0, 45.0));
        });
        g.bench_with_input(BenchmarkId::new("best_hop_sparse", n), &n, |b, _| {
            b.iter(|| sparse.best_one_hop(black_box(a), black_box(bb), 1.0, 45.0));
        });
        let round_two = |store: &dyn Fn(usize, usize) -> Option<(usize, f64)>| {
            let mut count = 0usize;
            for &x in &held {
                for &y in &held {
                    if x != y && store(x, y).is_some() {
                        count += 1;
                    }
                }
            }
            count
        };
        g.bench_with_input(BenchmarkId::new("round_two_dense", n), &n, |b, _| {
            b.iter(|| black_box(round_two(&|x, y| dense.best_one_hop(x, y, 1.0, 45.0))));
        });
        g.bench_with_input(BenchmarkId::new("round_two_sparse", n), &n, |b, _| {
            b.iter(|| black_box(round_two(&|x, y| sparse.best_one_hop(x, y, 1.0, 45.0))));
        });
    }
    g.finish();
}

/// The full round-two server tick as the router actually runs it — not
/// just the inner kernel. A warm quorum server at n = 1024 holds its
/// own ground-truth row plus all `~2√n` rendezvous clients' rows (each
/// fully live, so every pair merge-joins 1024-entry working sets) and
/// `on_routing_tick` performs failover management, round-one link-state
/// fan-out and the full recommendation computation for every fresh
/// client pair.
fn bench_round_two_tick(c: &mut Criterion) {
    use apor_linkstate::LinkStateMsg;
    use apor_routing::{ProtocolConfig, QuorumRouter, RoutingAlgorithm};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    let mut g = c.benchmark_group("round_two_tick");
    g.sample_size(10);
    for n in [1024usize] {
        let topo = bench_topology(n);
        let grid = Grid::new(n);
        let me = 0usize;
        let own = ground_truth_row(&topo, me);
        let mut router: QuorumRouter = QuorumRouter::new(me, n, 1, ProtocolConfig::quorum());
        let mut rng = ChaCha8Rng::seed_from_u64(0x5EED);
        let _ = router.on_routing_tick(0.0, &own, &mut rng);
        for c_idx in grid.rendezvous_clients(me) {
            let msg = Message::LinkState(LinkStateMsg {
                from: NodeId::from_index(c_idx),
                to: NodeId::from_index(me),
                view: 1,
                round: 1,
                basis_ms: 250,
                entries: ground_truth_row(&topo, c_idx),
                seqno: 0,
                retractions: vec![],
            });
            let _ = router.on_message(0.25, &msg);
        }
        g.bench_with_input(BenchmarkId::new("server_tick", n), &n, |b, _| {
            b.iter(|| black_box(router.on_routing_tick(0.5, &own, &mut rng).len()));
        });
    }
    g.finish();
}

/// The anti-entropy hot path: one sync frame encode + decode + merge
/// into a divergent ledger — what every node pays once per sync period.
fn bench_anti_entropy(c: &mut Criterion) {
    use apor_membership::{SwimMsg, SwimStatus, SwimUpdate, ViewLedger};

    let entries = |n: usize, offset: u32| -> Vec<SwimUpdate> {
        (0..n)
            .map(|i| SwimUpdate {
                id: NodeId(i as u16),
                incarnation: (i as u32 + offset) % 4,
                status: if i % 7 == 0 {
                    SwimStatus::Faulty
                } else {
                    SwimStatus::Alive
                },
            })
            .collect()
    };
    let mut g = c.benchmark_group("anti_entropy");
    for n in [32usize, 140, 255] {
        let frame = SwimMsg::SyncReq {
            from: NodeId(0),
            to: NodeId(1),
            seq: 1,
            chunk: 0,
            chunks: 1,
            updates: entries(n, 0),
        };
        g.throughput(Throughput::Bytes(frame.wire_size() as u64));
        g.bench_with_input(BenchmarkId::new("frame_encode", n), &frame, |b, frame| {
            b.iter(|| black_box(frame.encode()));
        });
        let bytes = frame.encode();
        g.bench_with_input(BenchmarkId::new("frame_decode", n), &bytes, |b, bytes| {
            b.iter(|| SwimMsg::decode(black_box(bytes)).unwrap());
        });
        // The responder-side merge: apply a full divergent chunk to a
        // pre-built ledger (construction stays in the setup closure so
        // only the merge is timed).
        let incoming = entries(n, 1);
        g.bench_with_input(BenchmarkId::new("ledger_merge", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut ledger = ViewLedger::new();
                    for u in entries(n, 0) {
                        ledger.apply(u.id, u.incarnation, u.status == SwimStatus::Faulty);
                    }
                    ledger
                },
                |mut ledger| {
                    for u in &incoming {
                        ledger.apply(u.id, u.incarnation, u.status == SwimStatus::Faulty);
                    }
                    black_box(ledger.version())
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

criterion_group!(
    kernels,
    bench_calibration,
    bench_grid,
    bench_best_one_hop,
    bench_round_two,
    bench_round_two_tick,
    bench_dense_vs_sparse,
    bench_wire,
    bench_multihop,
    bench_floyd_warshall,
    bench_anti_entropy
);
criterion_main!(kernels);
