//! CPU-cost ablations for the design choices DESIGN.md calls out.
//! (The *metric* ablations — bandwidth/freshness trade-offs — live in
//! `apor-experiments ablations`; these benches isolate the compute cost
//! of each design variant.)

use apor_bench::bench_topology;
use apor_linkstate::{LinkEntry, Message, RecEntry, RecFormat, RecommendationMsg};
use apor_quorum::{Grid, GridShape, NodeId};
use apor_routing::{ProtocolConfig, QuorumRouter, RoutingAlgorithm};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

/// Compact (4 B) vs WithCost (6 B) recommendation codec.
fn bench_rec_format(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_rec_format");
    for format in [RecFormat::Compact, RecFormat::WithCost] {
        let msg = Message::Recommendations(RecommendationMsg {
            from: NodeId(1),
            to: NodeId(2),
            view: 1,
            round: 3,
            basis_ms: 0,
            format,
            recs: (0..24)
                .map(|i| RecEntry {
                    dst: NodeId(i),
                    hop: NodeId(i * 3 % 140),
                    cost_ms: 120,
                })
                .collect(),
        });
        let label = format!("{format:?}");
        g.bench_with_input(BenchmarkId::new("roundtrip", &label), &msg, |b, msg| {
            b.iter(|| {
                let bytes = msg.encode();
                Message::decode(black_box(&bytes)).unwrap()
            });
        });
    }
    g.finish();
}

/// Paper grid shape vs wide and tall rectangles: rendezvous-set
/// derivation cost (and, implicitly, degree).
fn bench_grid_shapes(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_grid_shape");
    let n = 400;
    let shapes = [
        ("paper_20x20", GridShape::for_nodes(n)),
        ("wide_10x40", GridShape::custom(n, 10, 40).unwrap()),
        ("tall_40x10", GridShape::custom(n, 40, 10).unwrap()),
    ];
    for (label, shape) in shapes {
        g.bench_with_input(
            BenchmarkId::new("derive_all", label),
            &shape,
            |b, &shape| {
                b.iter(|| {
                    let grid = Grid::with_shape(n, shape);
                    let mut total = 0usize;
                    for i in 0..n {
                        total += grid.rendezvous_servers(i).len();
                    }
                    black_box(total)
                });
            },
        );
    }
    g.finish();
}

/// Per-tick CPU cost: quorum router vs the dominant cost driver (healthy
/// vs half-failed fleet — failure management is the §4.1 machinery).
fn bench_router_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_router_tick");
    g.sample_size(20);
    for n in [100usize, 196] {
        let topo = bench_topology(n);
        let healthy_row: Vec<LinkEntry> = (0..n)
            .map(|j| LinkEntry::live(LinkEntry::quantize_latency(topo.latency.rtt(0, j)), 0.0))
            .collect();
        let mut degraded_row = healthy_row.clone();
        for (j, e) in degraded_row.iter_mut().enumerate() {
            if j % 2 == 1 {
                *e = LinkEntry::dead();
            }
        }
        for (label, row) in [("healthy", &healthy_row), ("half_failed", &degraded_row)] {
            g.bench_with_input(
                BenchmarkId::new(format!("quorum_{label}"), n),
                &n,
                |b, &n| {
                    b.iter_batched(
                        || {
                            (
                                QuorumRouter::new(0, n, 1, ProtocolConfig::quorum()),
                                ChaCha8Rng::seed_from_u64(1),
                            )
                        },
                        |(mut router, mut rng)| {
                            black_box(router.on_routing_tick(10.0, row, &mut rng))
                        },
                        criterion::BatchSize::SmallInput,
                    );
                },
            );
        }
    }
    g.finish();
}

criterion_group!(
    ablations,
    bench_rec_format,
    bench_grid_shapes,
    bench_router_tick
);
criterion_main!(ablations);
