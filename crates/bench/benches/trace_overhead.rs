//! Causal-trace overhead benchmarks — deliberately a *separate* bench
//! target from `kernels` so the perf-trajectory gate's binary stays
//! byte-identical: a 1.4 µs gated micro-kernel can swing ±30% on code
//! layout alone when unrelated code is added to the same binary.
//!
//! Three costs every node could pay per packet:
//!
//! * the disabled-tracer [`Tracer::record`] call — the default
//!   configuration (one relaxed atomic load, then return), which is
//!   what keeps tracing off the hot paths the gate protects;
//! * the enabled seqlock ring write;
//! * the SWIM frame encode with and without the 8-byte trace-context
//!   block piggybacked during an episode's hot window.
//!
//! The measured numbers are quoted in `docs/OBSERVABILITY.md`.

use apor_membership::{SwimMsg, SwimStatus, SwimUpdate};
use apor_quorum::NodeId;
use apor_telemetry::{SpanKind, TraceCtx, Tracer};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_trace(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace");
    let disabled = Tracer::disabled();
    g.bench_function("record_disabled", |b| {
        b.iter(|| {
            black_box(disabled.record(black_box(SpanKind::GossipHop), black_box(7), 0, 3, 1.0, 1.0))
        });
    });
    let enabled = Tracer::new(1, 1024);
    g.bench_function("record_enabled", |b| {
        b.iter(|| {
            black_box(enabled.record(black_box(SpanKind::GossipHop), black_box(7), 0, 3, 1.0, 1.0))
        });
    });
    let frame = SwimMsg::Ping {
        from: NodeId(0),
        to: NodeId(1),
        seq: 42,
        updates: (0..6)
            .map(|i| SwimUpdate {
                id: NodeId(i),
                incarnation: 1,
                status: SwimStatus::Suspect,
            })
            .collect(),
    };
    let ctx = TraceCtx {
        episode: 0x0005_0001,
        origin: 5,
        hop: 2,
    };
    g.bench_with_input(BenchmarkId::new("swim_encode", "plain"), &frame, |b, f| {
        b.iter(|| black_box(f.encode_traced(None)));
    });
    g.bench_with_input(BenchmarkId::new("swim_encode", "traced"), &frame, |b, f| {
        b.iter(|| black_box(f.encode_traced(Some(&ctx))));
    });
    g.finish();
}

criterion_group!(trace_overhead, bench_trace);
criterion_main!(trace_overhead);
