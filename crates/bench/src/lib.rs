//! Shared fixtures for the Criterion benchmarks.
//!
//! Three bench suites live in `benches/`:
//!
//! * `kernels` — the computational hot paths: grid construction, the
//!   round-two best-hop kernel, the wire codec, the multi-hop iteration.
//! * `figures` — one benchmark per paper table/figure regeneration, at
//!   reduced scale (the full-scale runs live in `apor-experiments`).
//! * `ablations` — the design choices DESIGN.md calls out: routing
//!   interval, recommendation format, grid shape, staleness window.

#![forbid(unsafe_code)]

use apor_linkstate::{LinkEntry, LinkStateStore, LinkStateTable};
use apor_routing::onehop;
use apor_topology::{PlanetLabParams, Topology};

/// A deterministic synthetic topology of `n` nodes.
#[must_use]
pub fn bench_topology(n: usize) -> Topology {
    Topology::generate(&PlanetLabParams {
        n,
        seed: 0xBE7C4,
        ..Default::default()
    })
}

/// Node `i`'s ground-truth link-state row in `topo` (see
/// [`onehop::ground_truth_row`]).
#[must_use]
pub fn ground_truth_row(topo: &Topology, i: usize) -> Vec<LinkEntry> {
    onehop::ground_truth_row(&topo.latency, i)
}

/// A fully populated link-state table derived from the topology's ground
/// truth (all rows fresh at t = 0).
#[must_use]
pub fn full_table(topo: &Topology) -> LinkStateTable {
    let n = topo.len();
    let mut table = LinkStateTable::new(n);
    for i in 0..n {
        table.update_row(i, &ground_truth_row(topo, i), 0.0);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_consistent() {
        let t = bench_topology(49);
        let table = full_table(&t);
        assert_eq!(table.len(), 49);
        assert!(table.best_one_hop(0, 48, 0.0, 45.0).is_some());
    }
}
