//! The paper's closed-form bandwidth model (section 6.1).
//!
//! With the default intervals (30 s probes; 30 s RON routing; 15 s quorum
//! routing) the paper states, in bits per second of combined incoming and
//! outgoing traffic per node:
//!
//! * probing (either algorithm): `49.1·n`
//! * RON full-mesh routing: `1.6·n² + 24.5·n`
//! * quorum routing: `6.4·n·√n + 17.1·n + 196.3·√n`
//!
//! These close the loop between the wire format, the protocol intervals
//! and figure 9's theory lines; `apor-linkstate`'s tests verify the same
//! constants bottom-up from message sizes.

/// Per-node probing traffic, bps (in + out).
#[must_use]
pub fn probing_bps(n: f64) -> f64 {
    49.1 * n
}

/// Per-node RON (full-mesh) routing traffic, bps (in + out).
#[must_use]
pub fn ron_routing_bps(n: f64) -> f64 {
    1.6 * n * n + 24.5 * n
}

/// Per-node quorum routing traffic, bps (in + out).
#[must_use]
pub fn quorum_routing_bps(n: f64) -> f64 {
    6.4 * n * n.sqrt() + 17.1 * n + 196.3 * n.sqrt()
}

/// The smallest integer n at which quorum routing is cheaper than
/// full-mesh routing — figure 9's crossover.
#[must_use]
pub fn crossover_n() -> usize {
    (2..100_000)
        .find(|&n| quorum_routing_bps(n as f64) < ron_routing_bps(n as f64))
        .unwrap_or(usize::MAX)
}

/// Overlay size supportable within `budget_bps` of probing + routing
/// traffic, for the given routing formula — the paper's capacity claim
/// ("a RON with 56 Kbps … 165 → 300 nodes").
#[must_use]
pub fn capacity_at(budget_bps: f64, routing: fn(f64) -> f64) -> usize {
    let mut best = 0;
    for n in 1..100_000 {
        let total = probing_bps(n as f64) + routing(n as f64);
        if total <= budget_bps {
            best = n;
        } else {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure_9_values_at_140() {
        // "the routing traffic (incoming and outgoing) for 140 nodes would
        // be 34.8 Kbps for the link-state algorithm, and 15.3 Kbps using
        // ours."
        let ron = ron_routing_bps(140.0);
        assert!((ron / 1000.0 - 34.8).abs() < 0.3, "RON {ron}");
        let q = quorum_routing_bps(140.0);
        assert!((q / 1000.0 - 15.3).abs() < 0.3, "quorum {q}");
    }

    #[test]
    fn crossover_in_expected_band() {
        let x = crossover_n();
        assert!(
            (20..70).contains(&x),
            "crossover at n={x}, expected a few dozen"
        );
    }

    #[test]
    fn capacity_claim_from_section_1() {
        // "a RON with 56 Kbps of probing and routing traffic … would be
        // able to support nearly twice as many nodes (from 165 to 300)".
        let ron_cap = capacity_at(56_000.0, ron_routing_bps);
        let quorum_cap = capacity_at(56_000.0, quorum_routing_bps);
        assert!(
            (150..=185).contains(&ron_cap),
            "RON capacity {ron_cap}, paper says ~165"
        );
        assert!(
            (270..=330).contains(&quorum_cap),
            "quorum capacity {quorum_cap}, paper says ~300"
        );
        assert!(quorum_cap as f64 / ron_cap as f64 > 1.6);
    }

    #[test]
    fn planetlab_416_sites_claim() {
        // "an overlay running at each of the 416 PlanetLab sites would
        // consume 86 Kbps … using prior systems … 307 Kbps."
        let n = 416.0;
        let ours = probing_bps(n) + quorum_routing_bps(n);
        let prior = probing_bps(n) + ron_routing_bps(n);
        assert!((ours / 1000.0 - 86.0).abs() < 6.0, "ours {ours}");
        assert!((prior / 1000.0 - 307.0).abs() < 15.0, "prior {prior}");
    }

    #[test]
    fn skype_scenario_50x_reduction() {
        // Section 6: "On an overlay with 10,000 nodes our algorithm,
        // modified appropriately, would give a 50-fold reduction in
        // per-node communication." The Skype scenario optimizes average
        // latency rather than failure recovery, so the quorum system would
        // run at the *same* routing interval as full-mesh instead of half
        // of it — doubling its advantage: 1.6n² / (6.4n√n / 2) = 0.5·√n =
        // 50 at n = 10⁴.
        let n = 10_000.0;
        let equal_interval_quorum = quorum_routing_bps(n) / 2.0;
        let ratio = ron_routing_bps(n) / equal_interval_quorum;
        assert!((40.0..60.0).contains(&ratio), "ratio {ratio}");
        // With the paper's default (halved) interval the reduction is
        // still ~25× at this scale.
        let default_ratio = ron_routing_bps(n) / quorum_routing_bps(n);
        assert!((20.0..30.0).contains(&default_ratio), "{default_ratio}");
    }
}
