//! Route-freshness tracking (figures 12–14).
//!
//! The paper samples, every 30 seconds, "the amount of time since a node
//! received the last recommendation to each destination", then reports —
//! per (src, dst) pair — the median, average, 97th percentile and maximum
//! over all sampling instants. [`FreshnessTracker`] accumulates those
//! samples during a run; [`FreshnessStats`] summarizes them.

use crate::cdf::Cdf;

/// Per-pair summary of freshness samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreshnessStats {
    /// Median over sampling instants, seconds.
    pub median: f64,
    /// Mean over sampling instants, seconds.
    pub average: f64,
    /// 97th percentile, seconds.
    pub p97: f64,
    /// Worst case, seconds.
    pub max: f64,
    /// Number of samples summarized.
    pub samples: usize,
}

/// Accumulates freshness samples per (src, dst) pair.
#[derive(Debug, Clone)]
pub struct FreshnessTracker {
    n: usize,
    /// samples[src * n + dst] = ages observed at the sampling instants.
    samples: Vec<Vec<f64>>,
}

impl FreshnessTracker {
    /// A tracker over `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        FreshnessTracker {
            n,
            samples: vec![Vec::new(); n * n],
        }
    }

    /// Record that at some sampling instant, `src`'s routing information
    /// about `dst` was `age_s` old. Use `f64::INFINITY` when `src` has
    /// never heard about `dst` (kept, reported via `never_fraction`).
    pub fn record(&mut self, src: usize, dst: usize, age_s: f64) {
        assert!(src < self.n && dst < self.n && src != dst);
        self.samples[src * self.n + dst].push(age_s);
    }

    /// Summarize one pair; `None` when it has no finite samples.
    #[must_use]
    pub fn pair_stats(&self, src: usize, dst: usize) -> Option<FreshnessStats> {
        let finite: Vec<f64> = self.samples[src * self.n + dst]
            .iter()
            .copied()
            .filter(|a| a.is_finite())
            .collect();
        if finite.is_empty() {
            return None;
        }
        let cdf = Cdf::new(finite);
        Some(FreshnessStats {
            median: cdf.median().unwrap(),
            average: cdf.mean().unwrap(),
            p97: cdf.quantile(0.97),
            max: cdf.max().unwrap(),
            samples: cdf.len(),
        })
    }

    /// Summaries for all pairs with data, in `(src, dst)` order — the rows
    /// behind figure 12.
    #[must_use]
    pub fn all_pairs(&self) -> Vec<((usize, usize), FreshnessStats)> {
        let mut out = Vec::new();
        for s in 0..self.n {
            for d in 0..self.n {
                if s == d {
                    continue;
                }
                if let Some(st) = self.pair_stats(s, d) {
                    out.push(((s, d), st));
                }
            }
        }
        out
    }

    /// Summaries for one source towards every destination — the rows
    /// behind figures 13/14.
    #[must_use]
    pub fn from_source(&self, src: usize) -> Vec<(usize, FreshnessStats)> {
        (0..self.n)
            .filter(|&d| d != src)
            .filter_map(|d| self.pair_stats(src, d).map(|st| (d, st)))
            .collect()
    }

    /// Fraction of samples (for one pair) where the source had *never*
    /// heard about the destination.
    #[must_use]
    pub fn never_fraction(&self, src: usize, dst: usize) -> f64 {
        let v = &self.samples[src * self.n + dst];
        if v.is_empty() {
            return 0.0;
        }
        v.iter().filter(|a| a.is_infinite()).count() as f64 / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_summary() {
        let mut t = FreshnessTracker::new(3);
        for age in [4.0, 8.0, 6.0, 100.0] {
            t.record(0, 1, age);
        }
        let s = t.pair_stats(0, 1).unwrap();
        assert_eq!(s.samples, 4);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.median, 6.0);
        assert!((s.average - 29.5).abs() < 1e-9);
        assert_eq!(s.p97, 100.0);
    }

    #[test]
    fn missing_pairs_are_none() {
        let t = FreshnessTracker::new(3);
        assert!(t.pair_stats(0, 2).is_none());
        assert!(t.all_pairs().is_empty());
    }

    #[test]
    fn infinite_samples_tracked_separately() {
        let mut t = FreshnessTracker::new(2);
        t.record(0, 1, f64::INFINITY);
        t.record(0, 1, 5.0);
        assert_eq!(t.never_fraction(0, 1), 0.5);
        let s = t.pair_stats(0, 1).unwrap();
        assert_eq!(s.samples, 1, "infinite ages excluded from stats");
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn from_source_collects_destinations() {
        let mut t = FreshnessTracker::new(3);
        t.record(1, 0, 3.0);
        t.record(1, 2, 9.0);
        let rows = t.from_source(1);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, 0);
        assert_eq!(rows[1].0, 2);
        assert_eq!(rows[1].1.median, 9.0);
    }

    #[test]
    #[should_panic]
    fn self_pair_rejected() {
        FreshnessTracker::new(2).record(1, 1, 0.0);
    }
}
