//! CSV and aligned-table output for the experiment binaries.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Write rows as CSV (first row = header). Creates parent directories.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_csv<P: AsRef<Path>>(path: P, header: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// A minimal aligned text table for terminal summaries.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", cell, width = widths[c]);
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * cols;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("apor-report-test");
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Columns align: "value" and the numbers start at the same offset.
        let off = lines[0].find("value").unwrap();
        assert_eq!(lines[2].len().min(off), off.min(lines[2].len()));
    }

    #[test]
    #[should_panic(expected = "width")]
    fn row_width_checked() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
