//! Measurement and reporting toolkit for the evaluation (section 6).
//!
//! * [`cdf`] — empirical CDFs in the paper's "number of nodes with ≤ x"
//!   style (figures 8, 10, 11) and fraction-of-paths style (figure 1).
//! * [`freshness`] — per-(src, dst) route-freshness statistics sampled at
//!   30-second intervals: median / average / 97th percentile / max
//!   (figures 12–14).
//! * [`theory`] — the paper's closed-form bandwidth formulas and their
//!   crossover point (figure 9's theory series).
//! * [`report`] — tiny CSV + aligned-table writers used by every
//!   experiment binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdf;
pub mod freshness;
pub mod report;
pub mod theory;

pub use cdf::Cdf;
pub use freshness::{FreshnessStats, FreshnessTracker};
pub use report::{write_csv, Table};
