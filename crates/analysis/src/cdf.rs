//! Empirical cumulative distributions.

/// An empirical CDF over `f64` samples.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from samples (NaNs are dropped).
    #[must_use]
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| !x.is_nan());
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Cdf { sorted: samples }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x`.
    #[must_use]
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.count_at_most(x) as f64 / self.sorted.len() as f64
    }

    /// Count of samples ≤ `x` — the y-axis of the paper's
    /// "number of nodes with ≤" plots.
    #[must_use]
    pub fn count_at_most(&self, x: f64) -> usize {
        self.sorted.partition_point(|&v| v <= x)
    }

    /// The `p`-quantile (`0 ≤ p ≤ 1`), by the nearest-rank method.
    ///
    /// # Panics
    /// Panics when the CDF is empty or `p` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        if p <= 0.0 {
            return self.sorted[0];
        }
        let rank = (p * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Minimum sample.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Arithmetic mean.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
    }

    /// Median (0.5 quantile).
    #[must_use]
    pub fn median(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.quantile(0.5))
        }
    }

    /// The `(x, count_at_most)` steps of the CDF, one per distinct sample —
    /// ready to plot or dump as CSV.
    #[must_use]
    pub fn steps(&self) -> Vec<(f64, usize)> {
        let mut out: Vec<(f64, usize)> = Vec::new();
        for (i, &x) in self.sorted.iter().enumerate() {
            match out.last_mut() {
                Some(last) if last.0 == x => last.1 = i + 1,
                _ => out.push((x, i + 1)),
            }
        }
        out
    }

    /// Evaluate the CDF on a fixed grid of `points` values spanning
    /// `[lo, hi]`, returning `(x, fraction ≤ x)` rows.
    #[must_use]
    pub fn on_grid(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2 && hi > lo);
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.fraction_at_most(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_counts_and_fractions() {
        let c = Cdf::new(vec![3.0, 1.0, 2.0, 2.0]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.count_at_most(0.5), 0);
        assert_eq!(c.count_at_most(2.0), 3);
        assert_eq!(c.count_at_most(99.0), 4);
        assert!((c.fraction_at_most(2.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let c = Cdf::new((1..=100).map(f64::from).collect());
        assert_eq!(c.quantile(0.5), 50.0);
        assert_eq!(c.quantile(0.97), 97.0);
        assert_eq!(c.quantile(1.0), 100.0);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.median(), Some(50.0));
    }

    #[test]
    fn summary_stats() {
        let c = Cdf::new(vec![10.0, 20.0, 30.0]);
        assert_eq!(c.min(), Some(10.0));
        assert_eq!(c.max(), Some(30.0));
        assert_eq!(c.mean(), Some(20.0));
    }

    #[test]
    fn empty_cdf_is_graceful() {
        let c = Cdf::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.fraction_at_most(5.0), 0.0);
        assert_eq!(c.min(), None);
        assert_eq!(c.mean(), None);
        assert_eq!(c.median(), None);
    }

    #[test]
    fn nan_samples_dropped() {
        let c = Cdf::new(vec![1.0, f64::NAN, 2.0]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn steps_deduplicate() {
        let c = Cdf::new(vec![1.0, 1.0, 2.0]);
        assert_eq!(c.steps(), vec![(1.0, 2), (2.0, 3)]);
    }

    #[test]
    fn grid_evaluation() {
        let c = Cdf::new(vec![0.0, 10.0]);
        let g = c.on_grid(0.0, 10.0, 3);
        assert_eq!(g.len(), 3);
        assert_eq!(g[0], (0.0, 0.5));
        assert_eq!(g[2], (10.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_of_empty_panics() {
        let _ = Cdf::new(vec![]).quantile(0.5);
    }
}
